// Reusable fixed-size worker pool for the parallel counting passes.
//
// Algorithm 3.2 partitions a counting scan over "processor elements"; the
// seed implementation spawned fresh std::threads per call, which costs a
// syscall storm on every pass when the miner sweeps hundreds of attribute
// pairs. ThreadPool keeps the workers alive across passes: Run() hands an
// indexed task batch to the pool and blocks until every task has executed,
// with the calling thread participating so a size-1 pool degrades to a
// plain loop.

#ifndef OPTRULES_COMMON_THREAD_POOL_H_
#define OPTRULES_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace optrules {

/// Fixed-size pool executing indexed task batches. Thread-safe: concurrent
/// Run() calls are serialized against each other.
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the caller is the remaining
  /// "thread"); num_threads >= 1.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism: workers + the calling thread.
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Executes fn(0), ..., fn(num_tasks - 1), each exactly once, across the
  /// pool and the calling thread; returns when all tasks completed. Task
  /// order across threads is unspecified, so fn must only touch disjoint
  /// state per index (the counting kernels merge partials afterwards).
  void Run(int num_tasks, const std::function<void(int)>& fn);

 private:
  void WorkerLoop();
  /// Pops and runs tasks of batch `generation` until none remain (or the
  /// batch is over). Claims are made under mu_, so late-woken workers can
  /// never cross into a newer batch's state.
  void DrainTasks(uint64_t generation);

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  // All batch state below is guarded by mu_.
  const std::function<void(int)>* fn_ = nullptr;  // current batch
  int num_tasks_ = 0;
  int next_task_ = 0;
  int completed_ = 0;
  uint64_t generation_ = 0;  // bumped per Run(); wakes the workers
  bool stop_ = false;
  std::mutex run_mu_;  // serializes concurrent Run() calls
  std::vector<std::thread> workers_;
};

/// Process-wide pool sized to the hardware, created on first use. The
/// counting layer uses this when the caller does not pass its own pool.
ThreadPool& DefaultThreadPool();

}  // namespace optrules

#endif  // OPTRULES_COMMON_THREAD_POOL_H_
