// Lightweight CHECK/DCHECK macros for programmer-error invariants.
//
// The library does not use exceptions; violated invariants are programmer
// errors and abort the process with a source location, mirroring the
// CHECK-style contract used by large C++ database codebases.

#ifndef OPTRULES_COMMON_LOGGING_H_
#define OPTRULES_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace optrules::internal_logging {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace optrules::internal_logging

/// Aborts with a diagnostic if `expr` is false. Always on.
#define OPTRULES_CHECK(expr)                                              \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::optrules::internal_logging::CheckFailed(__FILE__, __LINE__,       \
                                                #expr);                   \
    }                                                                     \
  } while (0)

/// Debug-only variant of OPTRULES_CHECK; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define OPTRULES_DCHECK(expr) \
  do {                        \
  } while (0)
#else
#define OPTRULES_DCHECK(expr) OPTRULES_CHECK(expr)
#endif

#endif  // OPTRULES_COMMON_LOGGING_H_
