// Binomial tail probabilities for the sample-size analysis of Section 3.2
// (Figure 1 of the paper).
//
// For a sample of size S and M buckets, the count X of sample points that
// land in a fixed 1/M-quantile interval follows Binomial(S, 1/M). The paper
// plots `pe = Pr(|X - S/M| >= delta * S/M)` against S/M and picks S = 40*M
// where pe drops below 0.30 for delta = 0.5.

#ifndef OPTRULES_COMMON_BINOMIAL_H_
#define OPTRULES_COMMON_BINOMIAL_H_

#include <cstdint>

namespace optrules {

/// Natural log of n! computed via lgamma; exact to double precision.
double LogFactorial(int64_t n);

/// Natural log of the binomial coefficient C(n, k); requires 0 <= k <= n.
double LogBinomialCoefficient(int64_t n, int64_t k);

/// Pr(X == k) for X ~ Binomial(n, p), computed in log space.
double BinomialPmf(int64_t n, int64_t k, double p);

/// Pr(X <= k) for X ~ Binomial(n, p). Sums pmf terms in log space; exact
/// enough for the plot ranges used here (n <= ~10^6).
double BinomialCdf(int64_t n, int64_t k, double p);

/// The paper's error probability: for X ~ Binomial(S, 1/M), returns
/// Pr(|X - S/M| >= delta * S/M). Requires S >= 1, M >= 2, delta > 0.
double BucketDeviationProbability(int64_t sample_size, int64_t num_buckets,
                                  double delta);

}  // namespace optrules

#endif  // OPTRULES_COMMON_BINOMIAL_H_
