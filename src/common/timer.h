// Wall-clock timer for the benchmark harnesses.

#ifndef OPTRULES_COMMON_TIMER_H_
#define OPTRULES_COMMON_TIMER_H_

#include <chrono>

namespace optrules {

/// Measures elapsed wall-clock time from construction or the last Reset().
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction/Reset.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction/Reset.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace optrules

#endif  // OPTRULES_COMMON_TIMER_H_
