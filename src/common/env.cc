#include "common/env.h"

#include <cstdio>
#include <cstdlib>
#include <limits>

namespace optrules::env {

std::optional<uint64_t> ParseNonNegativeInt(std::string_view text) {
  if (text.empty()) return std::nullopt;
  uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (std::numeric_limits<uint64_t>::max() - digit) / 10) {
      return std::nullopt;  // would overflow
    }
    value = value * 10 + digit;
  }
  return value;
}

uint64_t ReadEnvNonNegativeInt(const char* name, uint64_t fallback) {
  const char* text = std::getenv(name);
  if (text == nullptr || text[0] == '\0') return fallback;
  const std::optional<uint64_t> parsed = ParseNonNegativeInt(text);
  if (!parsed.has_value()) {
    std::fprintf(stderr,
                 "optrules: ignoring %s=\"%s\" (not a clean non-negative "
                 "integer); using default %llu\n",
                 name, text, static_cast<unsigned long long>(fallback));
    return fallback;
  }
  return *parsed;
}

bool ReadEnvFlag(const char* name, bool fallback) {
  const char* text = std::getenv(name);
  if (text == nullptr || text[0] == '\0') return fallback;
  const std::optional<uint64_t> parsed = ParseNonNegativeInt(text);
  if (!parsed.has_value()) {
    std::fprintf(stderr,
                 "optrules: ignoring %s=\"%s\" (not a clean non-negative "
                 "integer); using default %d\n",
                 name, text, fallback ? 1 : 0);
    return fallback;
  }
  return *parsed != 0;
}

}  // namespace optrules::env
