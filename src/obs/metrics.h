// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// latency histograms.
//
// Hot-path design: instruments are created once (registry lookup under a
// mutex) and the returned pointers are stable for the registry's lifetime,
// so callsites cache them. Increments are wait-free -- counters shard
// their cells across cache lines keyed by a per-thread index so concurrent
// writers never contend, and snapshotting only performs relaxed loads, so
// it is ~free for the writers. All updates are monotone per memory
// location (counters and histogram buckets only ever fetch_add
// non-negative deltas), which makes successive snapshots monotone too.
//
// The process-wide enable switch (SetMetricsEnabled) exists for overhead
// measurement: with it off, every Add/Observe is a single relaxed load and
// branch, which is how the bench harnesses compute metrics_overhead_seconds
// and how the obs tests pin the disabled-path cost. Reads (Value,
// Snapshot) ignore the switch.

#ifndef OPTRULES_OBS_METRICS_H_
#define OPTRULES_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace optrules::obs {

/// True when instruments record updates (the default). Snapshot/Value
/// always work regardless.
bool MetricsEnabled();

/// Flips the process-wide recording switch. Used by bench harnesses to
/// measure instrumentation overhead; not meant for steady-state use.
void SetMetricsEnabled(bool enabled);

/// Monotone counter. Add() is wait-free: each thread lands on one of
/// kShards cache-line-padded cells, so concurrent increments never touch
/// the same line. Value() sums the shards with relaxed loads.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(int64_t delta = 1) {
    if (!MetricsEnabled()) return;
    shards_[ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  int64_t Value() const {
    int64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static constexpr int kShards = 16;

  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };

  /// Round-robin thread-to-shard assignment, cached per thread.
  static int ShardIndex();

  Shard shards_[kShards];
};

/// Last-value instrument (queue depths, cache occupancy). Not sharded:
/// Set() is a plain relaxed store and gauges are not hot-path.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) {
    if (!MetricsEnabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }

  void Add(double delta) {
    if (!MetricsEnabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time view of one histogram. bucket_counts has bounds.size()+1
/// entries; the last bucket counts observations above every bound.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<int64_t> bucket_counts;
  int64_t count = 0;
  double sum = 0.0;
};

/// Fixed-bucket histogram. Observe() is wait-free: one relaxed fetch_add
/// on the bucket cell plus one on the sum. Bounds are inclusive upper
/// bounds, sorted ascending; one overflow bucket is appended implicitly.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Default bounds for operation latencies in seconds: 1-2.5-5 decades
  /// from 1 microsecond to 10 seconds.
  static const std::vector<double>& DefaultLatencyBounds();

  void Observe(double value) {
    if (!MetricsEnabled()) return;
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const;

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  size_t BucketIndex(double value) const;

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<double> sum_{0.0};
};

/// Stable-ordered (std::map) point-in-time view of a whole registry, plus
/// its two export encodings.
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// One instrument per line, prometheus-flavoured, stable order.
  std::string ToText() const;

  /// {"counters":{...},"gauges":{...},"histograms":{name:{...}}}, stable
  /// key order (both encodings iterate the same maps).
  std::string ToJson() const;
};

/// Named-instrument registry. Get* creates on first use and returns a
/// pointer that stays valid for the registry's lifetime -- callsites look
/// up once and cache. Lookups take a mutex; updates through the returned
/// instruments never do.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);

  /// `bounds` empty selects DefaultLatencyBounds(). Bounds are fixed at
  /// first creation; later callers get the existing instrument.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});

  MetricsSnapshot Snapshot() const;

  /// The process-wide registry every subsystem reports into and every
  /// export surface (serve kMetricsReply, SIGUSR1 dump, bench JSON)
  /// reads from.
  static MetricsRegistry& Default();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace optrules::obs

#endif  // OPTRULES_OBS_METRICS_H_
