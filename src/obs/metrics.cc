#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace optrules::obs {

namespace {

std::atomic<bool> g_metrics_enabled{true};

/// Formats a double with enough digits to round-trip, trimming the
/// noise for integral values so the text encoding stays readable.
std::string FormatDouble(double value) {
  char buf[64];
  if (value == static_cast<int64_t>(value) &&
      std::abs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%" PRId64,
                  static_cast<int64_t>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  return buf;
}

/// Metric names are internal dotted identifiers, but the JSON encoding is
/// shipped over the wire and written to files, so escape defensively.
std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

int Counter::ShardIndex() {
  static std::atomic<uint32_t> next_thread{0};
  thread_local const uint32_t index =
      next_thread.fetch_add(1, std::memory_order_relaxed);
  return static_cast<int>(index % kShards);
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

const std::vector<double>& Histogram::DefaultLatencyBounds() {
  static const std::vector<double> kBounds = {
      1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4,
      5e-4, 1e-3,   2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1,
      2.5e-1, 5e-1, 1.0,  2.5,  5.0,  10.0};
  return kBounds;
}

size_t Histogram::BucketIndex(double value) const {
  // First bound >= value; values above every bound (and NaN) land in the
  // overflow bucket.
  const auto it =
      std::lower_bound(bounds_.begin(), bounds_.end(), value);
  return static_cast<size_t>(it - bounds_.begin());
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.bucket_counts.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snap.bucket_counts[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.bucket_counts[i];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    out += "counter " + name + " " + FormatDouble(static_cast<double>(value));
    out += '\n';
  }
  for (const auto& [name, value] : gauges) {
    out += "gauge " + name + " " + FormatDouble(value);
    out += '\n';
  }
  for (const auto& [name, hist] : histograms) {
    out += "histogram " + name +
           " count=" + FormatDouble(static_cast<double>(hist.count)) +
           " sum=" + FormatDouble(hist.sum) + " buckets=";
    for (size_t i = 0; i < hist.bucket_counts.size(); ++i) {
      if (i != 0) out += ',';
      out += FormatDouble(static_cast<double>(hist.bucket_counts[i]));
    }
    out += '\n';
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ',';
    first = false;
    out += "\"" + JsonEscape(name) +
           "\":" + FormatDouble(static_cast<double>(value));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ',';
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + FormatDouble(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms) {
    if (!first) out += ',';
    first = false;
    out += "\"" + JsonEscape(name) +
           "\":{\"count\":" + FormatDouble(static_cast<double>(hist.count)) +
           ",\"sum\":" + FormatDouble(hist.sum) + ",\"bounds\":[";
    for (size_t i = 0; i < hist.bounds.size(); ++i) {
      if (i != 0) out += ',';
      out += FormatDouble(hist.bounds[i]);
    }
    out += "],\"bucket_counts\":[";
    for (size_t i = 0; i < hist.bucket_counts.size(); ++i) {
      if (i != 0) out += ',';
      out += FormatDouble(static_cast<double>(hist.bucket_counts[i]));
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    if (bounds.empty()) bounds = Histogram::DefaultLatencyBounds();
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->Value();
  }
  for (const auto& [name, hist] : histograms_) {
    snap.histograms[name] = hist->Snapshot();
  }
  return snap;
}

MetricsRegistry& MetricsRegistry::Default() {
  // Leaked so instruments cached by other static-storage objects stay
  // valid through process teardown in any destruction order.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace optrules::obs
