#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <map>

namespace optrules::obs {

namespace {

thread_local uint64_t tls_current_span = 0;

uint64_t NextSpanId() {
  // Ids are global (not per-tracer) so parentage survives handing ids
  // between tracers and threads; 0 stays reserved for "no parent".
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendSpanJson(const SpanRecord& record,
                    const std::map<uint64_t, std::vector<size_t>>& children,
                    const std::vector<SpanRecord>& records,
                    std::string* out) {
  *out += "{\"id\":" + std::to_string(record.id) +
          ",\"name\":\"" + JsonEscape(record.name) +
          "\",\"start_seconds\":" + FormatDouble(record.start_seconds) +
          ",\"duration_seconds\":" + FormatDouble(record.duration_seconds);
  if (!record.attributes.empty()) {
    *out += ",\"attributes\":{";
    for (size_t i = 0; i < record.attributes.size(); ++i) {
      if (i != 0) *out += ',';
      *out += "\"" + JsonEscape(record.attributes[i].first) +
              "\":" + FormatDouble(record.attributes[i].second);
    }
    *out += '}';
  }
  const auto it = children.find(record.id);
  if (it != children.end()) {
    *out += ",\"children\":[";
    for (size_t i = 0; i < it->second.size(); ++i) {
      if (i != 0) *out += ',';
      AppendSpanJson(records[it->second[i]], children, records, out);
    }
    *out += ']';
  }
  *out += '}';
}

// Default-tracer exit dump. File-scope statics because std::atexit takes
// a captureless function.
std::string* g_trace_dump_path = nullptr;

void DumpDefaultTrace() {
  if (g_trace_dump_path == nullptr) return;
  std::FILE* file = std::fopen(g_trace_dump_path->c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "optrules: cannot write OPTRULES_TRACE_JSON=%s\n",
                 g_trace_dump_path->c_str());
    return;
  }
  const std::string json = Tracer::Default().ToJson();
  std::fwrite(json.data(), 1, json.size(), file);
  std::fputc('\n', file);
  std::fclose(file);
}

}  // namespace

Tracer::Tracer(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now()) {}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  if (total_ <= capacity_) {
    out = ring_;
  } else {
    // Ring wrapped: oldest record sits at the insertion cursor.
    const size_t cursor = total_ % capacity_;
    out.insert(out.end(), ring_.begin() + static_cast<ptrdiff_t>(cursor),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<ptrdiff_t>(cursor));
  }
  return out;
}

uint64_t Tracer::dropped_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ > capacity_ ? total_ - capacity_ : 0;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  total_ = 0;
}

void Tracer::Record(SpanRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else {
    ring_[total_ % capacity_] = std::move(record);
  }
  ++total_;
}

std::string Tracer::ToJson() const {
  const std::vector<SpanRecord> records = Snapshot();
  std::map<uint64_t, size_t> by_id;
  for (size_t i = 0; i < records.size(); ++i) by_id[records[i].id] = i;
  std::map<uint64_t, std::vector<size_t>> children;
  std::vector<size_t> roots;
  for (size_t i = 0; i < records.size(); ++i) {
    const uint64_t parent = records[i].parent_id;
    if (parent != 0 && by_id.count(parent) != 0) {
      children[parent].push_back(i);
    } else {
      // Parent never recorded (still live, or evicted from the ring):
      // promote to root so the output stays a forest.
      roots.push_back(i);
    }
  }
  std::string out = "{\"dropped_spans\":" + std::to_string(dropped_spans()) +
                    ",\"spans\":[";
  for (size_t i = 0; i < roots.size(); ++i) {
    if (i != 0) out += ',';
    AppendSpanJson(records[roots[i]], children, records, &out);
  }
  out += "]}";
  return out;
}

uint64_t Tracer::CurrentSpanId() { return tls_current_span; }

Tracer& Tracer::Default() {
  static Tracer* tracer = [] {
    auto* t = new Tracer();
    const char* path = std::getenv("OPTRULES_TRACE_JSON");
    if (path != nullptr && path[0] != '\0') {
      t->set_enabled(true);
      g_trace_dump_path = new std::string(path);
      std::atexit(DumpDefaultTrace);
    }
    return t;
  }();
  return *tracer;
}

Span::Span(Tracer* tracer, std::string_view name) {
  if (tracer == nullptr || !tracer->enabled()) return;
  tracer_ = tracer;
  id_ = NextSpanId();
  parent_id_ = tls_current_span;
  name_.assign(name);
  tls_current_span = id_;
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (tracer_ == nullptr) return;
  const auto end = std::chrono::steady_clock::now();
  tls_current_span = parent_id_;
  SpanRecord record;
  record.id = id_;
  record.parent_id = parent_id_;
  record.name = std::move(name_);
  record.start_seconds = tracer_->SecondsSinceEpoch(start_);
  record.duration_seconds =
      std::chrono::duration<double>(end - start_).count();
  record.attributes = std::move(attributes_);
  tracer_->Record(std::move(record));
}

void Span::AddAttribute(std::string_view key, double value) {
  if (tracer_ == nullptr) return;
  attributes_.emplace_back(std::string(key), value);
}

ScopedParent::ScopedParent(uint64_t parent_id) : saved_(tls_current_span) {
  tls_current_span = parent_id;
}

ScopedParent::~ScopedParent() { tls_current_span = saved_; }

}  // namespace optrules::obs
