// Span-based tracer with bounded memory.
//
// A Span is an RAII scope: construction captures the start time and links
// to the thread's current span as parent; destruction appends one
// SpanRecord to the tracer's ring buffer. Parentage follows a thread-local
// current-span id, so nested Spans on one thread form a tree with no
// plumbing; crossing a thread boundary (scheduler handing a window to a
// worker, the coordinator fanning partitions out to scan threads) is
// explicit via ScopedParent, which installs a given span id as the
// current parent for the scope of the receiving thread's work.
//
// When the tracer is disabled (the default), Span construction is a
// single relaxed load and the Span holds no state -- scan hot paths can
// create spans unconditionally. The process-wide tracer enables itself
// when OPTRULES_TRACE_JSON=<path> is set and dumps the trace tree as JSON
// to that path at process exit.

#ifndef OPTRULES_OBS_TRACE_H_
#define OPTRULES_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace optrules::obs {

/// One finished span. start_seconds is relative to the tracer's epoch
/// (its construction time); parent_id 0 means "root".
struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent_id = 0;
  std::string name;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  std::vector<std::pair<std::string, double>> attributes;
};

/// Ring-buffered span sink. Bounded: once capacity is reached the oldest
/// records are overwritten (and counted in dropped_spans()), so a
/// long-lived daemon's tracer never grows.
class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  explicit Tracer(size_t capacity = kDefaultCapacity);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Finished spans, oldest first. The ring keeps only the newest
  /// `capacity` records.
  std::vector<SpanRecord> Snapshot() const;

  /// Records overwritten because the ring was full.
  uint64_t dropped_spans() const;

  /// Discards all buffered records (tests).
  void Clear();

  /// Nested trace-tree encoding: an array of root spans, each with its
  /// children inlined. Spans whose parent fell off the ring are promoted
  /// to roots so the output is always a forest.
  std::string ToJson() const;

  /// The id of this thread's innermost live Span (0 if none). New spans
  /// on this thread adopt it as parent.
  static uint64_t CurrentSpanId();

  /// Process-wide tracer. Enabled automatically when OPTRULES_TRACE_JSON
  /// is set, in which case the trace tree is written there at exit.
  static Tracer& Default();

 private:
  friend class Span;

  void Record(SpanRecord record);
  double SecondsSinceEpoch(std::chrono::steady_clock::time_point tp) const {
    return std::chrono::duration<double>(tp - epoch_).count();
  }

  std::atomic<bool> enabled_{false};
  const size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;  // insertion cursor = total_ % capacity_
  uint64_t total_ = 0;            // records ever written
};

/// RAII span scope. Near-free no-op when the tracer is disabled at
/// construction time.
class Span {
 public:
  /// Span on the process-wide tracer.
  explicit Span(std::string_view name) : Span(&Tracer::Default(), name) {}

  Span(Tracer* tracer, std::string_view name);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  /// Attaches a named numeric attribute (phase timings, row counts).
  /// No-op on an inactive span.
  void AddAttribute(std::string_view key, double value);

  /// This span's id (0 when inactive). Hand it to a ScopedParent on
  /// another thread to parent that thread's spans under this one.
  uint64_t id() const { return id_; }
  bool active() const { return tracer_ != nullptr; }

 private:
  Tracer* tracer_ = nullptr;  // null <=> disabled at construction
  uint64_t id_ = 0;
  uint64_t parent_id_ = 0;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<std::string, double>> attributes_;
};

/// Installs `parent_id` as this thread's current span for the scope,
/// restoring the previous value on destruction. The cross-thread link:
/// capture span.id() on the sending thread, construct a ScopedParent from
/// it on the receiving thread.
class ScopedParent {
 public:
  explicit ScopedParent(uint64_t parent_id);
  ScopedParent(const ScopedParent&) = delete;
  ScopedParent& operator=(const ScopedParent&) = delete;
  ~ScopedParent();

 private:
  uint64_t saved_;
};

}  // namespace optrules::obs

#endif  // OPTRULES_OBS_TRACE_H_
