// Optimized rectangular regions (Section 1.4 extension; the authors'
// companion SIGMOD'96 paper treats rectangles as the simplest admissible
// region family).
//
// Strategy: enumerate every pair of y-rows [y1, y2] (O(ny^2) bands),
// collapse the band's columns into a 1-D bucket array in O(nx) with
// running sums, and run the corresponding 1-D optimized-rule algorithm
// from Section 4 on it. Total cost O(ny^2 * nx) -- the 1-D linear
// algorithms are what make this practical.

#ifndef OPTRULES_REGION_RECTANGLE_H_
#define OPTRULES_REGION_RECTANGLE_H_

#include <cstdint>

#include "common/ratio.h"
#include "region/grid.h"

namespace optrules::region {

/// A mined rectangle [x1, x2] x [y1, y2] (inclusive bucket indices) with
/// its statistics.
struct RegionRule {
  bool found = false;
  int x1 = -1;
  int x2 = -1;
  int y1 = -1;
  int y2 = -1;
  int64_t support_count = 0;
  int64_t hit_count = 0;
  double support = 0.0;
  double confidence = 0.0;
};

/// Maximizes confidence over rectangles with support_count >=
/// min_support_count (ties toward larger support).
RegionRule OptimizedConfidenceRectangle(const GridCounts& grid,
                                        int64_t min_support_count);

/// Maximizes support over rectangles with confidence >= min_confidence.
RegionRule OptimizedSupportRectangle(const GridCounts& grid,
                                     Ratio min_confidence);

/// Maximizes the gain den*v - num*u over rectangles (2-D Kadane).
RegionRule MaxGainRectangle(const GridCounts& grid, Ratio theta);

}  // namespace optrules::region

#endif  // OPTRULES_REGION_RECTANGLE_H_
