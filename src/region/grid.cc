#include "region/grid.h"

#include <utility>

#include "bucketing/counting.h"

namespace optrules::region {

GridCounts GridCounts::FromCells(int nx, int ny, std::vector<int64_t> u,
                                 std::vector<int64_t> v,
                                 int64_t total_tuples) {
  OPTRULES_CHECK(nx >= 1 && ny >= 1);
  const auto cells = static_cast<size_t>(nx) * static_cast<size_t>(ny);
  OPTRULES_CHECK(u.size() == cells);
  OPTRULES_CHECK(v.size() == cells);
  GridCounts grid;
  grid.nx_ = nx;
  grid.ny_ = ny;
  grid.u_ = std::move(u);
  grid.v_ = std::move(v);
  grid.total_tuples_ = total_tuples;
  return grid;
}

GridCounts BuildGrid(std::span<const double> x_values,
                     std::span<const double> y_values,
                     std::span<const uint8_t> target,
                     const bucketing::BucketBoundaries& x_boundaries,
                     const bucketing::BucketBoundaries& y_boundaries) {
  OPTRULES_CHECK(x_values.size() == y_values.size());
  OPTRULES_CHECK(x_values.size() == target.size());
  GridCounts grid(x_boundaries.num_buckets(), y_boundaries.num_buckets());
  for (size_t row = 0; row < x_values.size(); ++row) {
    const int x = x_boundaries.Locate(x_values[row]);
    const int y = y_boundaries.Locate(y_values[row]);
    // NaN coordinates belong to no cell but still count toward N (same
    // policy as the 1-D kernels).
    if (x == bucketing::BucketBoundaries::kNoBucket ||
        y == bucketing::BucketBoundaries::kNoBucket) {
      grid.AddMissing();
      continue;
    }
    grid.Add(x, y, target[row] != 0);
  }
  return grid;
}

GridCounts FromGridBucketCounts(const bucketing::GridBucketCounts& cells,
                                int target) {
  OPTRULES_CHECK(0 <= target && target < cells.num_targets());
  return GridCounts::FromCells(cells.nx, cells.ny, cells.u,
                               cells.v[static_cast<size_t>(target)],
                               cells.total_tuples);
}

}  // namespace optrules::region
