#include "region/grid.h"

namespace optrules::region {

GridCounts BuildGrid(std::span<const double> x_values,
                     std::span<const double> y_values,
                     std::span<const uint8_t> target,
                     const bucketing::BucketBoundaries& x_boundaries,
                     const bucketing::BucketBoundaries& y_boundaries) {
  OPTRULES_CHECK(x_values.size() == y_values.size());
  OPTRULES_CHECK(x_values.size() == target.size());
  GridCounts grid(x_boundaries.num_buckets(), y_boundaries.num_buckets());
  for (size_t row = 0; row < x_values.size(); ++row) {
    const int x = x_boundaries.Locate(x_values[row]);
    const int y = y_boundaries.Locate(y_values[row]);
    // NaN coordinates belong to no cell (same policy as the 1-D kernels).
    if (x == bucketing::BucketBoundaries::kNoBucket ||
        y == bucketing::BucketBoundaries::kNoBucket) {
      continue;
    }
    grid.Add(x, y, target[row] != 0);
  }
  return grid;
}

}  // namespace optrules::region
