#include "region/xmonotone.h"

#include <algorithm>

namespace optrules::region {

namespace {

/// Packs an interval (s, t) into one int for the parent tables; -1 = none.
int PackInterval(int s, int t, int ny) { return s * ny + t; }
std::pair<int, int> UnpackInterval(int packed, int ny) {
  return {packed / ny, packed % ny};
}

}  // namespace

XMonotoneRegion MaxGainXMonotoneRegion(const GridCounts& grid,
                                       Ratio theta) {
  const int nx = grid.nx();
  const int ny = grid.ny();
  XMonotoneRegion best;
  if (grid.total_tuples() == 0 && nx * ny == 0) return best;

  const auto cell = [&](int x, int y) -> __int128 {
    return static_cast<__int128>(theta.den()) * grid.v(x, y) -
           static_cast<__int128>(theta.num()) * grid.u(x, y);
  };

  // cover[s*ny + t]: best gain of an x-monotone region ending at column x
  // whose last interval is [s, t]. parent[x][s*ny+t]: previous column's
  // interval, or -1 when the region starts at x.
  std::vector<__int128> cover(static_cast<size_t>(ny) * ny);
  std::vector<__int128> prev_cover(static_cast<size_t>(ny) * ny);
  std::vector<std::vector<int>> parent(
      static_cast<size_t>(nx),
      std::vector<int>(static_cast<size_t>(ny) * ny, -1));

  // Running-max tables over the previous column:
  //   suffix_max[s'][b] = max_{t' >= b} prev_cover[s'][t']   (+argmax)
  //   prefix_max[a][b]  = max_{s' <= a} suffix_max[s'][b]    (+argmax)
  std::vector<__int128> prefix_max(static_cast<size_t>(ny) * ny);
  std::vector<int> prefix_arg(static_cast<size_t>(ny) * ny, -1);

  __int128 best_gain = 0;
  int best_x = -1;
  int best_interval = -1;

  std::vector<__int128> column_prefix(static_cast<size_t>(ny) + 1);
  for (int x = 0; x < nx; ++x) {
    // Per-column gain prefix sums: gain(x, s, t) = p[t+1] - p[s].
    column_prefix[0] = 0;
    for (int y = 0; y < ny; ++y) {
      column_prefix[static_cast<size_t>(y) + 1] =
          column_prefix[static_cast<size_t>(y)] + cell(x, y);
    }

    if (x > 0) {
      // Build the overlap-max table from prev_cover.
      // Step 1: suffix max over t' (per s'), reusing prefix_max storage.
      for (int s = 0; s < ny; ++s) {
        __int128 running = prev_cover[static_cast<size_t>(s) * ny + (ny - 1)];
        int running_arg = PackInterval(s, ny - 1, ny);
        prefix_max[static_cast<size_t>(s) * ny + (ny - 1)] = running;
        prefix_arg[static_cast<size_t>(s) * ny + (ny - 1)] = running_arg;
        for (int b = ny - 2; b >= s; --b) {
          const __int128 value = prev_cover[static_cast<size_t>(s) * ny + b];
          if (value > running) {
            running = value;
            running_arg = PackInterval(s, b, ny);
          }
          prefix_max[static_cast<size_t>(s) * ny + b] = running;
          prefix_arg[static_cast<size_t>(s) * ny + b] = running_arg;
        }
        // Entries with b < s are not valid intervals for s'; fill them
        // with the value at b = s so step 2 can scan uniformly.
        for (int b = s - 1; b >= 0; --b) {
          prefix_max[static_cast<size_t>(s) * ny + b] =
              prefix_max[static_cast<size_t>(s) * ny + s];
          prefix_arg[static_cast<size_t>(s) * ny + b] =
              prefix_arg[static_cast<size_t>(s) * ny + s];
        }
      }
      // Step 2: prefix max over s' (per b), in place.
      for (int b = 0; b < ny; ++b) {
        for (int s = 1; s < ny; ++s) {
          const size_t here = static_cast<size_t>(s) * ny + b;
          const size_t above = static_cast<size_t>(s - 1) * ny + b;
          if (prefix_max[above] > prefix_max[here]) {
            prefix_max[here] = prefix_max[above];
            prefix_arg[here] = prefix_arg[above];
          }
        }
      }
    }

    for (int s = 0; s < ny; ++s) {
      for (int t = s; t < ny; ++t) {
        const __int128 gain = column_prefix[static_cast<size_t>(t) + 1] -
                              column_prefix[static_cast<size_t>(s)];
        __int128 value = gain;
        int link = -1;
        if (x > 0) {
          // Best previous interval overlapping [s, t]: s' <= t, t' >= s.
          const size_t key = static_cast<size_t>(t) * ny + s;
          if (prefix_max[key] > 0) {
            value += prefix_max[key];
            link = prefix_arg[key];
          }
        }
        const size_t index = static_cast<size_t>(s) * ny + t;
        cover[index] = value;
        parent[static_cast<size_t>(x)][index] = link;
        if (best_x < 0 || value > best_gain) {
          best_gain = value;
          best_x = x;
          best_interval = PackInterval(s, t, ny);
        }
      }
    }
    std::swap(cover, prev_cover);
  }

  if (best_x < 0) return best;

  // Traceback from (best_x, best_interval) to the region's first column.
  std::vector<std::pair<int, int>> reversed;
  int x = best_x;
  int packed = best_interval;
  while (packed >= 0) {
    reversed.push_back(UnpackInterval(packed, ny));
    packed = parent[static_cast<size_t>(x)][static_cast<size_t>(
        reversed.back().first) * ny + reversed.back().second];
    --x;
  }
  best.found = true;
  best.x_begin = x + 1;
  best.column_ranges.assign(reversed.rbegin(), reversed.rend());
  best.gain = static_cast<double>(best_gain);
  for (size_t i = 0; i < best.column_ranges.size(); ++i) {
    const int column = best.x_begin + static_cast<int>(i);
    for (int y = best.column_ranges[i].first;
         y <= best.column_ranges[i].second; ++y) {
      best.support_count += grid.u(column, y);
      best.hit_count += grid.v(column, y);
    }
  }
  best.support = grid.total_tuples() > 0
                     ? static_cast<double>(best.support_count) /
                           static_cast<double>(grid.total_tuples())
                     : 0.0;
  best.confidence = best.support_count > 0
                        ? static_cast<double>(best.hit_count) /
                              static_cast<double>(best.support_count)
                        : 0.0;
  return best;
}

}  // namespace optrules::region
