#include "region/rectangle.h"

#include <vector>

#include "rules/kadane.h"
#include "rules/optimized_confidence.h"
#include "rules/optimized_support.h"

namespace optrules::region {

namespace {

/// One y-band [y1, y2] collapsed to per-column totals, with empty columns
/// compacted out (the 1-D algorithms require u_i >= 1). `x_of[i]` maps the
/// compacted bucket i back to its grid column.
struct Band {
  std::vector<int64_t> u;
  std::vector<int64_t> v;
  std::vector<int> x_of;
};

void CompactBand(const std::vector<int64_t>& col_u,
                 const std::vector<int64_t>& col_v, Band* band) {
  band->u.clear();
  band->v.clear();
  band->x_of.clear();
  for (size_t x = 0; x < col_u.size(); ++x) {
    if (col_u[x] == 0) continue;
    band->u.push_back(col_u[x]);
    band->v.push_back(col_v[x]);
    band->x_of.push_back(static_cast<int>(x));
  }
}

void FillRegion(const GridCounts& grid, const Band& band, int s, int t,
                int y1, int y2, int64_t support_count, int64_t hit_count,
                RegionRule* out) {
  out->found = true;
  out->x1 = band.x_of[static_cast<size_t>(s)];
  out->x2 = band.x_of[static_cast<size_t>(t)];
  out->y1 = y1;
  out->y2 = y2;
  out->support_count = support_count;
  out->hit_count = hit_count;
  out->support = grid.total_tuples() > 0
                     ? static_cast<double>(support_count) /
                           static_cast<double>(grid.total_tuples())
                     : 0.0;
  out->confidence = support_count > 0
                        ? static_cast<double>(hit_count) /
                              static_cast<double>(support_count)
                        : 0.0;
}

/// conf(a) > conf(b) exactly, as h/s fractions.
bool ConfGreater(int64_t h1, int64_t s1, int64_t h2, int64_t s2) {
  return static_cast<__int128>(h1) * s2 > static_cast<__int128>(h2) * s1;
}

bool ConfEqual(int64_t h1, int64_t s1, int64_t h2, int64_t s2) {
  return static_cast<__int128>(h1) * s2 == static_cast<__int128>(h2) * s1;
}

/// Shared band sweep driving a per-band 1-D optimizer.
template <typename PerBand>
void SweepBands(const GridCounts& grid, PerBand per_band) {
  const int nx = grid.nx();
  std::vector<int64_t> col_u(static_cast<size_t>(nx));
  std::vector<int64_t> col_v(static_cast<size_t>(nx));
  Band band;
  for (int y1 = 0; y1 < grid.ny(); ++y1) {
    std::fill(col_u.begin(), col_u.end(), 0);
    std::fill(col_v.begin(), col_v.end(), 0);
    for (int y2 = y1; y2 < grid.ny(); ++y2) {
      for (int x = 0; x < nx; ++x) {
        col_u[static_cast<size_t>(x)] += grid.u(x, y2);
        col_v[static_cast<size_t>(x)] += grid.v(x, y2);
      }
      CompactBand(col_u, col_v, &band);
      if (band.u.empty()) continue;
      per_band(band, y1, y2);
    }
  }
}

}  // namespace

RegionRule OptimizedConfidenceRectangle(const GridCounts& grid,
                                        int64_t min_support_count) {
  RegionRule best;
  SweepBands(grid, [&](const Band& band, int y1, int y2) {
    const rules::RangeRule rule = rules::OptimizedConfidenceRule(
        band.u, band.v, grid.total_tuples(), min_support_count);
    if (!rule.found) return;
    const bool better =
        !best.found ||
        ConfGreater(rule.hit_count, rule.support_count, best.hit_count,
                    best.support_count) ||
        (ConfEqual(rule.hit_count, rule.support_count, best.hit_count,
                   best.support_count) &&
         rule.support_count > best.support_count);
    if (better) {
      FillRegion(grid, band, rule.s, rule.t, y1, y2, rule.support_count,
                 rule.hit_count, &best);
    }
  });
  return best;
}

RegionRule OptimizedSupportRectangle(const GridCounts& grid,
                                     Ratio min_confidence) {
  RegionRule best;
  SweepBands(grid, [&](const Band& band, int y1, int y2) {
    const rules::RangeRule rule = rules::OptimizedSupportRule(
        band.u, band.v, grid.total_tuples(), min_confidence);
    if (!rule.found) return;
    if (!best.found || rule.support_count > best.support_count) {
      FillRegion(grid, band, rule.s, rule.t, y1, y2, rule.support_count,
                 rule.hit_count, &best);
    }
  });
  return best;
}

RegionRule MaxGainRectangle(const GridCounts& grid, Ratio theta) {
  RegionRule best;
  __int128 best_gain = 0;
  SweepBands(grid, [&](const Band& band, int y1, int y2) {
    const rules::GainRange range =
        rules::MaxGainRange(band.u, band.v, theta);
    if (!range.found) return;
    // Recompute the exact gain (GainRange reports a double).
    __int128 gain = 0;
    int64_t support_count = 0;
    int64_t hit_count = 0;
    for (int i = range.s; i <= range.t; ++i) {
      gain += static_cast<__int128>(theta.den()) *
                  band.v[static_cast<size_t>(i)] -
              static_cast<__int128>(theta.num()) *
                  band.u[static_cast<size_t>(i)];
      support_count += band.u[static_cast<size_t>(i)];
      hit_count += band.v[static_cast<size_t>(i)];
    }
    if (!best.found || gain > best_gain) {
      best_gain = gain;
      FillRegion(grid, band, range.s, range.t, y1, y2, support_count,
                 hit_count, &best);
    }
  });
  return best;
}

}  // namespace optrules::region
