// Two-dimensional bucketing (Section 1.4 extension).
//
// For rules of the form `(A1, A2) in X => C` the domain of the two numeric
// attributes is partitioned into an nx-by-ny grid of buckets (equi-depth
// per axis), and each cell stores the tuple count u and hit count v. The
// region miners (rectangle.h, xmonotone.h) operate on this grid.

#ifndef OPTRULES_REGION_GRID_H_
#define OPTRULES_REGION_GRID_H_

#include <cstdint>
#include <span>
#include <vector>

#include "bucketing/boundaries.h"
#include "common/logging.h"

namespace optrules::bucketing {
struct GridBucketCounts;  // counting.h; only referenced, never stored here
}  // namespace optrules::bucketing

namespace optrules::region {

/// Cell counts of a 2-D bucket grid, row-major by y (cell (x, y) is at
/// index y*nx + x).
class GridCounts {
 public:
  GridCounts() = default;
  GridCounts(int nx, int ny)
      : nx_(nx),
        ny_(ny),
        u_(static_cast<size_t>(nx) * static_cast<size_t>(ny), 0),
        v_(static_cast<size_t>(nx) * static_cast<size_t>(ny), 0) {
    OPTRULES_CHECK(nx >= 1 && ny >= 1);
  }

  /// Adopts pre-accumulated cell arrays (row-major by y, sized nx*ny):
  /// the bridge from an engine-produced bucketing::GridBucketCounts plane
  /// to the region miners. `total_tuples` is the support denominator N and
  /// may exceed the cell total (NaN rows belong to no cell).
  static GridCounts FromCells(int nx, int ny, std::vector<int64_t> u,
                              std::vector<int64_t> v, int64_t total_tuples);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int64_t total_tuples() const { return total_tuples_; }

  int64_t u(int x, int y) const { return u_[Index(x, y)]; }
  int64_t v(int x, int y) const { return v_[Index(x, y)]; }

  /// Adds one tuple to cell (x, y).
  void Add(int x, int y, bool hit) {
    ++u_[Index(x, y)];
    if (hit) ++v_[Index(x, y)];
    ++total_tuples_;
  }

  /// Counts one tuple toward the support denominator N without placing it
  /// in any cell -- the NaN policy for rows whose x or y value is NaN.
  void AddMissing() { ++total_tuples_; }

 private:
  size_t Index(int x, int y) const {
    OPTRULES_DCHECK(0 <= x && x < nx_);
    OPTRULES_DCHECK(0 <= y && y < ny_);
    return static_cast<size_t>(y) * static_cast<size_t>(nx_) +
           static_cast<size_t>(x);
  }

  int nx_ = 0;
  int ny_ = 0;
  std::vector<int64_t> u_;
  std::vector<int64_t> v_;
  int64_t total_tuples_ = 0;
};

/// Builds an nx-by-ny grid over two numeric columns and a Boolean target.
/// All spans must have equal length. A row with NaN in either column lands
/// in no cell but still counts toward total_tuples (the repo-wide NaN
/// policy, mirrored per axis pair).
GridCounts BuildGrid(std::span<const double> x_values,
                     std::span<const double> y_values,
                     std::span<const uint8_t> target,
                     const bucketing::BucketBoundaries& x_boundaries,
                     const bucketing::BucketBoundaries& y_boundaries);

/// The region-miner view of one Boolean target plane of an engine-produced
/// grid channel (bucketing::MultiCountPlan grid counting): copies cell u
/// and the target's v plane, keeping N = all scanned tuples.
GridCounts FromGridBucketCounts(const bucketing::GridBucketCounts& cells,
                                int target);

}  // namespace optrules::region

#endif  // OPTRULES_REGION_GRID_H_
