// Gain-optimized x-monotone regions (Section 1.4 extension).
//
// An x-monotone region of the grid assigns to each column x of a
// contiguous column span an interval [s_x, t_x] of rows such that
// consecutive intervals overlap (the region is connected and every
// vertical line crosses it in one segment). Following the authors'
// companion SIGMOD'96 paper, we maximize the *gain*
// `theta.den()*v - theta.num()*u` over such regions, which is the
// region-shaped analogue of Kadane's rule and always dominates the best
// rectangle's gain.
//
// Implementation: dynamic programming over columns. cover(x, [s,t]) =
// gain(x, s, t) + max(0, max over intervals of column x-1 overlapping
// [s,t]); the inner max is answered in O(1) per interval from a 2-D
// running-max table, giving O(nx * ny^2) total time.

#ifndef OPTRULES_REGION_XMONOTONE_H_
#define OPTRULES_REGION_XMONOTONE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/ratio.h"
#include "region/grid.h"

namespace optrules::region {

/// A mined x-monotone region.
struct XMonotoneRegion {
  bool found = false;
  int x_begin = -1;  ///< first column of the region (inclusive)
  /// Row interval [first, second] of each column x_begin, x_begin+1, ...
  std::vector<std::pair<int, int>> column_ranges;
  int64_t support_count = 0;
  int64_t hit_count = 0;
  double support = 0.0;
  double confidence = 0.0;
  /// Total gain in units of 1/theta.den().
  double gain = 0.0;
};

/// Maximizes gain over non-empty x-monotone regions.
XMonotoneRegion MaxGainXMonotoneRegion(const GridCounts& grid, Ratio theta);

}  // namespace optrules::region

#endif  // OPTRULES_REGION_XMONOTONE_H_
