#include "hull/static_hull.h"

namespace optrules::hull {

std::vector<int> UpperHullIndices(std::span<const Point> points) {
  std::vector<int> hull;
  for (int i = 0; i < static_cast<int>(points.size()); ++i) {
    if (i > 0) {
      OPTRULES_CHECK(points[static_cast<size_t>(i - 1)].x <
                     points[static_cast<size_t>(i)].x);
    }
    // Pop while the last two hull points and the new point fail to make a
    // clockwise (right) turn -- upper hull keeps right turns only.
    while (hull.size() >= 2) {
      const Point& a = points[static_cast<size_t>(hull[hull.size() - 2])];
      const Point& b = points[static_cast<size_t>(hull.back())];
      if (Orientation(a, b, points[static_cast<size_t>(i)]) < 0) break;
      hull.pop_back();
    }
    hull.push_back(i);
  }
  return hull;
}

}  // namespace optrules::hull
