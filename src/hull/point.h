// Planar points and slope/orientation predicates for the hull machinery.
//
// Exactness: the rule-mining instantiation uses cumulative integer counts
// as coordinates. Cross products are evaluated in long double (64-bit
// mantissa), which is exact whenever |dx*dy| < 2^63 -- i.e., for tables of
// up to ~3*10^9 tuples. The average-operator instantiation has real-valued
// y and inherits ordinary floating-point behaviour.

#ifndef OPTRULES_HULL_POINT_H_
#define OPTRULES_HULL_POINT_H_

#include "common/logging.h"

namespace optrules::hull {

/// A point in the plane (for rules: Q_k = (sum u_i, sum v_i)).
struct Point {
  double x = 0.0;
  double y = 0.0;
};

/// Sign of the cross product (b - a) x (c - a):
///   > 0 : a->b->c turns counterclockwise (c above line ab)
///   = 0 : collinear
///   < 0 : clockwise (c below line ab)
inline int Orientation(const Point& a, const Point& b, const Point& c) {
  const long double cross =
      (static_cast<long double>(b.x) - a.x) *
          (static_cast<long double>(c.y) - a.y) -
      (static_cast<long double>(b.y) - a.y) *
          (static_cast<long double>(c.x) - a.x);
  if (cross > 0) return 1;
  if (cross < 0) return -1;
  return 0;
}

/// Compares slope(origin, p) with slope(origin, q); both p and q must lie
/// strictly to the right of origin. Returns -1/0/+1 for < / == / >.
inline int CompareSlopes(const Point& origin, const Point& p,
                         const Point& q) {
  OPTRULES_DCHECK(p.x > origin.x);
  OPTRULES_DCHECK(q.x > origin.x);
  // slope(o,p) < slope(o,q)  <=>  q above the ray o->p  <=>
  // Orientation(o, p, q) > 0, so the comparison is the negated orientation.
  return -Orientation(origin, p, q);
}

}  // namespace optrules::hull

#endif  // OPTRULES_HULL_POINT_H_
