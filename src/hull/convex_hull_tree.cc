#include "hull/convex_hull_tree.h"

namespace optrules::hull {

ConvexHullTree::ConvexHullTree(std::vector<Point> points)
    : points_(std::move(points)) {
  OPTRULES_CHECK(!points_.empty());
  const int m = static_cast<int>(points_.size());
  for (int i = 1; i < m; ++i) {
    OPTRULES_CHECK(points_[static_cast<size_t>(i - 1)].x <
                   points_[static_cast<size_t>(i)].x);
  }
  branch_.resize(static_cast<size_t>(m));
  position_.assign(static_cast<size_t>(m), -1);
  stack_.reserve(static_cast<size_t>(m));

  // Preparatory phase: insert points right-to-left; nodes popped while
  // inserting Q_i form the branch D_i.
  for (int i = m - 1; i >= 0; --i) {
    const Point& q = points_[static_cast<size_t>(i)];
    while (stack_.size() >= 2) {
      const Point& top = points_[static_cast<size_t>(stack_.back())];
      const Point& second =
          points_[static_cast<size_t>(stack_[stack_.size() - 2])];
      // Pop while slope(Q_i, top) <= slope(Q_i, second): the top node lies
      // on or below the line from Q_i to the second node, so it is not on
      // U_i. Popped nodes are recorded (in increasing-x order) in D_i.
      if (CompareSlopes(q, top, second) > 0) break;
      branch_[static_cast<size_t>(i)].push_back(Pop());
    }
    Push(i);
  }
  base_ = 0;
}

void ConvexHullTree::AdvanceBase() {
  OPTRULES_CHECK(base_ < num_points() - 1);
  // Pop the leftmost node Q_base ...
  const int popped = Pop();
  OPTRULES_CHECK(popped == base_);
  // ... and push D_base back in top-to-bottom (decreasing-x) order, which
  // restores exactly the nodes of U_{base+1} hidden by Q_base.
  const std::vector<int>& branch = branch_[static_cast<size_t>(base_)];
  for (auto it = branch.rbegin(); it != branch.rend(); ++it) {
    Push(*it);
  }
  ++base_;
}

}  // namespace optrules::hull
