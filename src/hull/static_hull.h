// Static upper-hull construction (Andrew's monotone chain).
//
// Test oracle for the incremental convex-hull tree: the tree's hull after
// any number of restoration steps must equal the monotone-chain upper hull
// of the corresponding point suffix.

#ifndef OPTRULES_HULL_STATIC_HULL_H_
#define OPTRULES_HULL_STATIC_HULL_H_

#include <span>
#include <vector>

#include "hull/point.h"

namespace optrules::hull {

/// Indices (into `points`) of the upper hull, left to right. `points` must
/// be sorted by strictly increasing x. Collinear interior points are
/// excluded (strict hull).
std::vector<int> UpperHullIndices(std::span<const Point> points);

}  // namespace optrules::hull

#endif  // OPTRULES_HULL_STATIC_HULL_H_
