// Algorithm 4.1: online maintenance of suffix upper hulls.
//
// Given points Q_0, ..., Q_M sorted by strictly increasing x, the tree
// supports walking through the hulls U_0, U_1, ..., U_M, where U_i is the
// upper hull of {Q_i, ..., Q_M}, in O(M) total time. The preparatory phase
// (constructor) builds U_0 right-to-left, recording in a branch stack D_i
// the nodes that belong to U_{i+1} but not U_i; the restoration phase
// (AdvanceBase) pops the leftmost node and pushes D_i back, turning U_i
// into U_{i+1} in amortized O(1).
//
// The hull is exposed as a stack: position 0 is the bottom (rightmost
// point Q_M) and position size()-1 the top (leftmost point, the current
// base). Clockwise traversal of the upper hull (left to right) therefore
// corresponds to descending positions.

#ifndef OPTRULES_HULL_CONVEX_HULL_TREE_H_
#define OPTRULES_HULL_CONVEX_HULL_TREE_H_

#include <span>
#include <vector>

#include "hull/point.h"

namespace optrules::hull {

/// Suffix upper-hull structure over a fixed point sequence.
class ConvexHullTree {
 public:
  /// Builds the tree; `points` must have strictly increasing x and at least
  /// one element. After construction the current hull is U_0.
  explicit ConvexHullTree(std::vector<Point> points);

  /// Number of points (M + 1 in the paper's indexing).
  int num_points() const { return static_cast<int>(points_.size()); }

  /// The index i such that the current hull is U_i.
  int base() const { return base_; }

  /// Moves from U_base to U_{base+1}: pops Q_base and restores its branch
  /// D_base. Requires base() < num_points() - 1.
  void AdvanceBase();

  /// Number of nodes on the current hull.
  int hull_size() const { return static_cast<int>(stack_.size()); }

  /// Point index of the hull node at `position` (0 = bottom/rightmost,
  /// hull_size()-1 = top/leftmost).
  int NodeAt(int position) const {
    OPTRULES_DCHECK(0 <= position && position < hull_size());
    return stack_[static_cast<size_t>(position)];
  }

  /// Position of point `index` on the current hull, or -1 if absent.
  int PositionOf(int index) const {
    return position_[static_cast<size_t>(index)];
  }

  /// The point with the given index.
  const Point& point(int index) const {
    return points_[static_cast<size_t>(index)];
  }

  /// All points (sorted by x).
  std::span<const Point> points() const { return points_; }

 private:
  void Push(int index) {
    position_[static_cast<size_t>(index)] =
        static_cast<int>(stack_.size());
    stack_.push_back(index);
  }
  int Pop() {
    const int index = stack_.back();
    stack_.pop_back();
    position_[static_cast<size_t>(index)] = -1;
    return index;
  }

  std::vector<Point> points_;
  std::vector<int> stack_;              // the hull stack S
  std::vector<std::vector<int>> branch_;  // D_i, nodes popped at step i
  std::vector<int> position_;           // point index -> stack position
  int base_ = 0;
};

}  // namespace optrules::hull

#endif  // OPTRULES_HULL_CONVEX_HULL_TREE_H_
