// MiningServer: the resident mining service.
//
// A daemon-side scheduling layer over the existing engine: client
// connections (Unix-domain or TCP sockets) carry serve-protocol frames,
// and every admitted session is queued into a COALESCING WINDOW keyed by
// (table directory, table generation, options fingerprint). Sessions that
// arrive within the window against the same key -- typically many tenants
// querying one published table -- are answered by ONE shared MiningEngine
// whose single counting scan registers every session's channels up front,
// so N concurrent sessions cost one physical scan instead of N. Engines
// persist across windows in a small LRU keyed by the same triple; a
// republished table (new manifest bytes = new generation) naturally misses
// the cache and re-scans.
//
// Threading model:
//   * accept thread  -- polls the listen socket, admits connections.
//   * handler thread -- one per connection, the connection's ONLY reader:
//     decodes frames, answers pings/stats inline, enqueues sessions.
//   * scheduler thread -- the only owner of batches and engines: flushes
//     due windows, runs the shared sessions, writes result frames.
// Replies and inline answers target the same socket from different
// threads, so every write goes through the connection's dist::FrameWriter
// (the per-connection write mutex); frames never interleave.
//
// Failure isolation: a malformed or hostile frame fails with an error
// frame addressed to the offending session id (or closes just that
// connection when the stream itself is corrupt); other clients of the
// same batch -- even of the same connection -- are unaffected. Stop() is
// the graceful path: stop accepting, flush or deadline-fail the queued
// sessions, shut down every socket so blocked readers unwind, and release
// the engines (which closes subprocess worker rosters through their
// normal WNOHANG -> SIGTERM -> SIGKILL escalation), so a wedged client
// cannot hang process exit.

#ifndef OPTRULES_SERVE_SERVER_H_
#define OPTRULES_SERVE_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "dist/coordinator.h"
#include "dist/wire.h"
#include "serve/protocol.h"

namespace optrules::serve {

/// Admission-control and scheduling knobs of a MiningServer.
struct ServerOptions {
  /// Sessions admitted but not yet answered; the admission bound. A
  /// session beyond it is refused with an OutOfRange error frame.
  int max_pending_sessions = 64;
  /// Concurrent client connections; excess connects are refused with an
  /// error frame and closed.
  int max_connections = 64;
  /// The coalescing window: a session waits this long after the FIRST
  /// arrival of its (table, generation, options) key before the batch
  /// executes, collecting same-key sessions into one shared scan. 0
  /// executes every session immediately (coalescing off).
  int64_t coalescing_window_ms = 25;
  /// Deadline applied to sessions that do not carry their own.
  int64_t default_deadline_ms = 60'000;
  /// Stop(): how long the scheduler may keep executing queued batches
  /// before the remaining sessions are failed with DeadlineExceeded.
  int64_t drain_deadline_ms = 10'000;
  /// Send timeout per socket write, so a client that stops reading wedges
  /// its own replies, never a server thread (and never process exit).
  int64_t send_timeout_ms = 10'000;
  /// Engines kept resident across windows, LRU-evicted beyond this.
  int max_cached_engines = 4;
  /// Fan-out of each engine's counting scans.
  dist::DistributedScanOptions scan_options;
};

/// The resident service. Listen*() then Start(); Stop() is idempotent and
/// runs from the destructor if needed.
class MiningServer {
 public:
  explicit MiningServer(ServerOptions options = {});
  ~MiningServer();
  MiningServer(const MiningServer&) = delete;
  MiningServer& operator=(const MiningServer&) = delete;

  /// Binds a Unix-domain socket at `path` (unlinking a stale one).
  Status ListenUnix(const std::string& path);
  /// Binds 127.0.0.1:`port`; 0 picks an ephemeral port (see port()).
  Status ListenTcp(uint16_t port);

  /// The bound address: the socket path, or "127.0.0.1:<port>".
  const std::string& address() const { return address_; }
  /// The bound TCP port (0 for Unix-domain sockets).
  uint16_t port() const { return port_; }

  /// Spawns the accept and scheduler threads. Listen*() must have
  /// succeeded.
  Status Start();

  /// Graceful shutdown: stops accepting, drains or deadline-fails queued
  /// sessions, unblocks and joins every connection thread, releases the
  /// engine cache (terminating subprocess worker rosters). Idempotent.
  void Stop();

  /// Snapshot of the service counters (also served as kStatsResult).
  ServerStatsSnapshot Stats() const;

 private:
  struct Connection;
  struct CachedEngine;
  /// The coalescing key: same directory, same manifest bytes, same
  /// result-changing options => shareable scan.
  struct EngineKey {
    std::string table_dir;
    uint64_t generation = 0;
    uint64_t options_fingerprint = 0;
    friend auto operator<=>(const EngineKey&, const EngineKey&) = default;
  };
  /// One admitted session waiting in its coalescing window.
  struct PendingSession {
    std::shared_ptr<Connection> conn;
    uint32_t session_id = 0;
    SessionRequest request;
    int64_t enqueue_ms = 0;   ///< steady-clock admission time
    int64_t deadline_ms = 0;  ///< effective (defaulted) queue deadline
  };
  /// The sessions of one (key, window): executes as one shared engine
  /// session when `due_ms` passes.
  struct Batch {
    int64_t due_ms = 0;
    std::vector<PendingSession> sessions;
  };

  void AcceptLoop();
  void HandleConnection(std::shared_ptr<Connection> conn);
  /// Decodes + admits one kOpenSession payload from `conn`.
  void HandleOpenSession(const std::shared_ptr<Connection>& conn,
                         std::span<const uint8_t> payload);
  void SchedulerLoop();
  /// Runs one due batch: get-or-build the engine, register every
  /// session's channels, scan once, answer each session.
  void ExecuteBatch(const EngineKey& key, Batch batch);
  /// Replies with an error frame and counts the session failed.
  void FailSession(const std::shared_ptr<Connection>& conn,
                   uint32_t session_id, const Status& status);
  /// Looks the key up in the LRU (front = hottest), or opens the table
  /// and builds a fresh engine with `options` (evicting beyond the cache
  /// bound). Scheduler thread only.
  Result<CachedEngine*> GetOrCreateEngine(const EngineKey& key,
                                          const rules::MinerOptions& options);
  void WriteError(const std::shared_ptr<Connection>& conn,
                  uint32_t session_id, const Status& status);

  ServerOptions options_;
  int listen_fd_ = -1;
  std::string address_;
  uint16_t port_ = 0;
  /// Unix socket path to unlink on Stop (empty for TCP).
  std::string unlink_path_;

  std::thread accept_thread_;
  std::thread scheduler_thread_;

  mutable std::mutex mu_;
  std::condition_variable scheduler_cv_;
  /// Signals active_handlers_ reaching zero during Stop.
  std::condition_variable handlers_cv_;
  bool started_ = false;
  bool stopping_ = false;
  bool stopped_ = false;
  /// Steady-clock instant past which a draining scheduler fails the
  /// remaining queued sessions instead of executing them.
  int64_t stop_deadline_ms_ = 0;
  /// Open connections, for shutdown() fan-out on Stop.
  std::vector<std::shared_ptr<Connection>> connections_;
  /// Detached handler threads still running (each holds a Connection).
  int active_handlers_ = 0;
  /// Pending batches by key; a batch executes when its window expires.
  std::map<EngineKey, Batch> batches_;
  int pending_sessions_ = 0;

  /// Engines are touched ONLY by the scheduler thread (and Stop after the
  /// scheduler joined), so they need no lock of their own.
  std::list<std::pair<EngineKey, std::unique_ptr<CachedEngine>>> engines_;

  mutable std::mutex stats_mu_;
  ServerStatsSnapshot stats_;
};

}  // namespace optrules::serve

#endif  // OPTRULES_SERVE_SERVER_H_
