#include "serve/protocol.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "common/bytes.h"

namespace optrules::serve {

namespace {

using bytes::AppendScalar;
using bytes::AppendString;
using bytes::ByteReader;
using bytes::Fnv1a;

void AppendStatus(const Status& status, std::vector<uint8_t>* out) {
  AppendScalar<int32_t>(out, static_cast<int32_t>(status.code()));
  AppendString(out, status.message());
}

Status ReadStatus(ByteReader* reader, Status* out) {
  int32_t code = 0;
  std::string message;
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&code));
  OPTRULES_RETURN_IF_ERROR(reader->ReadString(&message));
  if (code < 0 ||
      code > static_cast<int32_t>(StatusCode::kDeadlineExceeded)) {
    return Status::Corruption("unknown status code in frame");
  }
  *out = code == 0 ? Status::Ok()
                   : Status(static_cast<StatusCode>(code),
                            std::move(message));
  return Status::Ok();
}

// ------------------------------------------------------ mined results ----

void AppendMinedRule(const rules::MinedRule& rule,
                     std::vector<uint8_t>* out) {
  AppendScalar<uint8_t>(out, rule.found ? 1 : 0);
  AppendScalar<uint8_t>(out, static_cast<uint8_t>(rule.kind));
  AppendString(out, rule.numeric_attr);
  AppendString(out, rule.boolean_attr);
  AppendString(out, rule.presumptive_condition);
  AppendScalar<double>(out, rule.range_lo);
  AppendScalar<double>(out, rule.range_hi);
  AppendScalar<int64_t>(out, rule.support_count);
  AppendScalar<int64_t>(out, rule.hit_count);
  AppendScalar<double>(out, rule.support);
  AppendScalar<double>(out, rule.confidence);
}

Status ReadMinedRule(ByteReader* reader, rules::MinedRule* rule) {
  uint8_t found = 0;
  uint8_t kind = 0;
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&found));
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&kind));
  if (kind > 1) return Status::Corruption("unknown rule kind");
  rule->found = found != 0;
  rule->kind = static_cast<rules::RuleKind>(kind);
  OPTRULES_RETURN_IF_ERROR(reader->ReadString(&rule->numeric_attr));
  OPTRULES_RETURN_IF_ERROR(reader->ReadString(&rule->boolean_attr));
  OPTRULES_RETURN_IF_ERROR(reader->ReadString(&rule->presumptive_condition));
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&rule->range_lo));
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&rule->range_hi));
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&rule->support_count));
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&rule->hit_count));
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&rule->support));
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&rule->confidence));
  return Status::Ok();
}

void AppendAggregate(const rules::MinedAggregateRange& range,
                     std::vector<uint8_t>* out) {
  AppendScalar<uint8_t>(out, range.found ? 1 : 0);
  AppendString(out, range.range_attr);
  AppendString(out, range.target_attr);
  AppendScalar<double>(out, range.range_lo);
  AppendScalar<double>(out, range.range_hi);
  AppendScalar<int64_t>(out, range.support_count);
  AppendScalar<double>(out, range.support);
  AppendScalar<double>(out, range.average);
}

Status ReadAggregate(ByteReader* reader,
                     rules::MinedAggregateRange* range) {
  uint8_t found = 0;
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&found));
  range->found = found != 0;
  OPTRULES_RETURN_IF_ERROR(reader->ReadString(&range->range_attr));
  OPTRULES_RETURN_IF_ERROR(reader->ReadString(&range->target_attr));
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&range->range_lo));
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&range->range_hi));
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&range->support_count));
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&range->support));
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&range->average));
  return Status::Ok();
}

void AppendRegionRule(const region::RegionRule& rule,
                      std::vector<uint8_t>* out) {
  AppendScalar<uint8_t>(out, rule.found ? 1 : 0);
  AppendScalar<int32_t>(out, rule.x1);
  AppendScalar<int32_t>(out, rule.x2);
  AppendScalar<int32_t>(out, rule.y1);
  AppendScalar<int32_t>(out, rule.y2);
  AppendScalar<int64_t>(out, rule.support_count);
  AppendScalar<int64_t>(out, rule.hit_count);
  AppendScalar<double>(out, rule.support);
  AppendScalar<double>(out, rule.confidence);
}

Status ReadRegionRule(ByteReader* reader, region::RegionRule* rule) {
  uint8_t found = 0;
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&found));
  rule->found = found != 0;
  int32_t x1 = 0, x2 = 0, y1 = 0, y2 = 0;
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&x1));
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&x2));
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&y1));
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&y2));
  rule->x1 = x1;
  rule->x2 = x2;
  rule->y1 = y1;
  rule->y2 = y2;
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&rule->support_count));
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&rule->hit_count));
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&rule->support));
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&rule->confidence));
  return Status::Ok();
}

void AppendRegion(const rules::MinedRegion& region,
                  std::vector<uint8_t>* out) {
  AppendScalar<uint8_t>(out, region.found ? 1 : 0);
  AppendString(out, region.x_attr);
  AppendString(out, region.y_attr);
  AppendString(out, region.target_attr);
  AppendScalar<int32_t>(out, region.nx);
  AppendScalar<int32_t>(out, region.ny);
  AppendScalar<int64_t>(out, region.total_tuples);
  AppendRegionRule(region.confidence_rectangle, out);
  AppendRegionRule(region.support_rectangle, out);
  const region::XMonotoneRegion& xm = region.xmonotone_gain;
  AppendScalar<uint8_t>(out, xm.found ? 1 : 0);
  AppendScalar<int32_t>(out, xm.x_begin);
  AppendScalar<uint32_t>(out, static_cast<uint32_t>(xm.column_ranges.size()));
  for (const auto& [lo, hi] : xm.column_ranges) {
    AppendScalar<int32_t>(out, lo);
    AppendScalar<int32_t>(out, hi);
  }
  AppendScalar<int64_t>(out, xm.support_count);
  AppendScalar<int64_t>(out, xm.hit_count);
  AppendScalar<double>(out, xm.support);
  AppendScalar<double>(out, xm.confidence);
  AppendScalar<double>(out, xm.gain);
}

Status ReadRegion(ByteReader* reader, rules::MinedRegion* region) {
  uint8_t found = 0;
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&found));
  region->found = found != 0;
  OPTRULES_RETURN_IF_ERROR(reader->ReadString(&region->x_attr));
  OPTRULES_RETURN_IF_ERROR(reader->ReadString(&region->y_attr));
  OPTRULES_RETURN_IF_ERROR(reader->ReadString(&region->target_attr));
  int32_t nx = 0, ny = 0;
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&nx));
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&ny));
  region->nx = nx;
  region->ny = ny;
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&region->total_tuples));
  OPTRULES_RETURN_IF_ERROR(
      ReadRegionRule(reader, &region->confidence_rectangle));
  OPTRULES_RETURN_IF_ERROR(ReadRegionRule(reader, &region->support_rectangle));
  region::XMonotoneRegion& xm = region->xmonotone_gain;
  uint8_t xm_found = 0;
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&xm_found));
  xm.found = xm_found != 0;
  int32_t x_begin = 0;
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&x_begin));
  xm.x_begin = x_begin;
  uint32_t num_columns = 0;
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&num_columns));
  if (num_columns > reader->remaining() / 8) {
    return Status::Corruption("column range count exceeds payload");
  }
  xm.column_ranges.resize(num_columns);
  for (auto& [lo, hi] : xm.column_ranges) {
    int32_t a = 0, b = 0;
    OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&a));
    OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&b));
    lo = a;
    hi = b;
  }
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&xm.support_count));
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&xm.hit_count));
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&xm.support));
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&xm.confidence));
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&xm.gain));
  return Status::Ok();
}

// ------------------------------------------------------------ options ----

void AppendOptions(const rules::MinerOptions& options,
                   std::vector<uint8_t>* out) {
  AppendScalar<int32_t>(out, options.num_buckets);
  AppendScalar<int64_t>(out, options.sample_per_bucket);
  AppendScalar<double>(out, options.min_support);
  AppendScalar<double>(out, options.min_confidence);
  AppendScalar<uint64_t>(out, options.seed);
  AppendScalar<uint8_t>(out, static_cast<uint8_t>(options.bucketizer));
  AppendScalar<double>(out, options.gk_epsilon);
  AppendScalar<int32_t>(out, options.region_grid_buckets);
}

Status ReadOptions(ByteReader* reader, rules::MinerOptions* options) {
  uint8_t bucketizer = 0;
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&options->num_buckets));
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&options->sample_per_bucket));
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&options->min_support));
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&options->min_confidence));
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&options->seed));
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&bucketizer));
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&options->gk_epsilon));
  OPTRULES_RETURN_IF_ERROR(
      reader->ReadScalar(&options->region_grid_buckets));
  if (bucketizer > static_cast<uint8_t>(rules::Bucketizer::kExactSort)) {
    return Status::Corruption("unknown bucketizer in session request");
  }
  options->bucketizer = static_cast<rules::Bucketizer>(bucketizer);
  return Status::Ok();
}

void AppendQuery(const ServeQuery& query, std::vector<uint8_t>* out) {
  AppendScalar<uint8_t>(out, static_cast<uint8_t>(query.kind));
  AppendString(out, query.attr_a);
  AppendString(out, query.attr_b);
  AppendString(out, query.target);
  AppendScalar<uint32_t>(out, static_cast<uint32_t>(query.conditions.size()));
  for (const std::string& name : query.conditions) AppendString(out, name);
  AppendScalar<double>(out, query.threshold);
  AppendScalar<int32_t>(out, query.nx);
  AppendScalar<int32_t>(out, query.ny);
}

Status ReadQuery(ByteReader* reader, ServeQuery* query) {
  uint8_t kind = 0;
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&kind));
  if (kind > static_cast<uint8_t>(ServeQuery::Kind::kRegion)) {
    return Status::Corruption("unknown query kind in session request");
  }
  query->kind = static_cast<ServeQuery::Kind>(kind);
  OPTRULES_RETURN_IF_ERROR(reader->ReadString(&query->attr_a));
  OPTRULES_RETURN_IF_ERROR(reader->ReadString(&query->attr_b));
  OPTRULES_RETURN_IF_ERROR(reader->ReadString(&query->target));
  uint32_t num_conditions = 0;
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&num_conditions));
  // Every condition name consumes at least its 8-byte length prefix.
  if (num_conditions > reader->remaining() / 8) {
    return Status::Corruption("condition count exceeds payload");
  }
  query->conditions.resize(num_conditions);
  for (std::string& name : query->conditions) {
    OPTRULES_RETURN_IF_ERROR(reader->ReadString(&name));
  }
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&query->threshold));
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&query->nx));
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&query->ny));
  if (query->nx < 0 || query->ny < 0 || query->nx > 4096 ||
      query->ny > 4096) {
    return Status::Corruption("region grid shape out of range");
  }
  return Status::Ok();
}

Status CheckKind(ByteReader* reader, ServeFrameKind expected) {
  uint8_t kind = 0;
  OPTRULES_RETURN_IF_ERROR(reader->ReadScalar(&kind));
  if (kind != static_cast<uint8_t>(expected)) {
    return Status::InvalidArgument("unexpected serve frame kind");
  }
  return Status::Ok();
}

}  // namespace

// -------------------------------------------------------- open session ----

void EncodeOpenSession(uint32_t session_id, const SessionRequest& request,
                       std::vector<uint8_t>* out) {
  OPTRULES_CHECK(out != nullptr);
  AppendScalar<uint8_t>(out,
                        static_cast<uint8_t>(ServeFrameKind::kOpenSession));
  AppendScalar<uint32_t>(out, session_id);
  AppendString(out, request.table_dir);
  AppendOptions(request.options, out);
  AppendScalar<int64_t>(out, request.deadline_ms);
  AppendScalar<uint32_t>(out, static_cast<uint32_t>(request.queries.size()));
  for (const ServeQuery& query : request.queries) AppendQuery(query, out);
}

Status DecodeOpenSession(std::span<const uint8_t> payload,
                         uint32_t* session_id_out, SessionRequest* out) {
  OPTRULES_CHECK(session_id_out != nullptr && out != nullptr);
  *session_id_out = 0;
  ByteReader reader(payload);
  OPTRULES_RETURN_IF_ERROR(CheckKind(&reader, ServeFrameKind::kOpenSession));
  OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(session_id_out));
  OPTRULES_RETURN_IF_ERROR(reader.ReadString(&out->table_dir));
  OPTRULES_RETURN_IF_ERROR(ReadOptions(&reader, &out->options));
  OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&out->deadline_ms));
  if (out->deadline_ms < 0) {
    return Status::Corruption("negative session deadline");
  }
  uint32_t num_queries = 0;
  OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&num_queries));
  if (num_queries > kMaxQueriesPerSession ||
      num_queries > reader.remaining()) {
    return Status::Corruption("query count exceeds payload");
  }
  out->queries.resize(num_queries);
  for (ServeQuery& query : out->queries) {
    OPTRULES_RETURN_IF_ERROR(ReadQuery(&reader, &query));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes in session request");
  }
  return Status::Ok();
}

// ------------------------------------------------------ session result ----

void EncodeSessionResult(const SessionReply& reply,
                         std::vector<uint8_t>* out) {
  OPTRULES_CHECK(out != nullptr);
  AppendScalar<uint8_t>(
      out, static_cast<uint8_t>(ServeFrameKind::kSessionResult));
  AppendScalar<uint32_t>(out, reply.session_id);
  AppendScalar<uint64_t>(out, reply.generation);
  AppendScalar<uint8_t>(out, reply.coalesced ? 1 : 0);
  AppendScalar<uint32_t>(out, static_cast<uint32_t>(reply.answers.size()));
  for (const QueryAnswer& answer : reply.answers) {
    AppendStatus(answer.status, out);
    AppendScalar<uint32_t>(out, static_cast<uint32_t>(answer.rules.size()));
    for (const rules::MinedRule& rule : answer.rules) {
      AppendMinedRule(rule, out);
    }
    AppendAggregate(answer.aggregate, out);
    AppendRegion(answer.region, out);
  }
}

Status DecodeSessionResult(std::span<const uint8_t> payload,
                           SessionReply* out) {
  OPTRULES_CHECK(out != nullptr);
  ByteReader reader(payload);
  OPTRULES_RETURN_IF_ERROR(
      CheckKind(&reader, ServeFrameKind::kSessionResult));
  OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&out->session_id));
  OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&out->generation));
  uint8_t coalesced = 0;
  OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&coalesced));
  out->coalesced = coalesced != 0;
  uint32_t num_answers = 0;
  OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&num_answers));
  if (num_answers > kMaxQueriesPerSession) {
    return Status::Corruption("answer count exceeds payload");
  }
  out->answers.resize(num_answers);
  for (QueryAnswer& answer : out->answers) {
    OPTRULES_RETURN_IF_ERROR(ReadStatus(&reader, &answer.status));
    uint32_t num_rules = 0;
    OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&num_rules));
    if (num_rules > reader.remaining()) {
      return Status::Corruption("rule count exceeds payload");
    }
    answer.rules.resize(num_rules);
    for (rules::MinedRule& rule : answer.rules) {
      OPTRULES_RETURN_IF_ERROR(ReadMinedRule(&reader, &rule));
    }
    OPTRULES_RETURN_IF_ERROR(ReadAggregate(&reader, &answer.aggregate));
    OPTRULES_RETURN_IF_ERROR(ReadRegion(&reader, &answer.region));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes in session result");
  }
  return Status::Ok();
}

// --------------------------------------------------------- error frame ----

void EncodeServeError(uint32_t session_id, const Status& status,
                      std::vector<uint8_t>* out) {
  OPTRULES_CHECK(out != nullptr && !status.ok());
  AppendScalar<uint8_t>(out,
                        static_cast<uint8_t>(ServeFrameKind::kServeError));
  AppendScalar<uint32_t>(out, session_id);
  AppendStatus(status, out);
}

Status DecodeServeError(std::span<const uint8_t> payload,
                        uint32_t* session_id_out, Status* carried) {
  OPTRULES_CHECK(session_id_out != nullptr && carried != nullptr);
  ByteReader reader(payload);
  OPTRULES_RETURN_IF_ERROR(CheckKind(&reader, ServeFrameKind::kServeError));
  OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(session_id_out));
  OPTRULES_RETURN_IF_ERROR(ReadStatus(&reader, carried));
  if (carried->ok()) {
    return Status::Corruption("serve error frame carried OK status");
  }
  return Status::Ok();
}

// --------------------------------------------------------------- stats ----

void EncodeStatsResult(const ServerStatsSnapshot& stats,
                       std::vector<uint8_t>* out) {
  OPTRULES_CHECK(out != nullptr);
  AppendScalar<uint8_t>(out,
                        static_cast<uint8_t>(ServeFrameKind::kStatsResult));
  AppendScalar<int64_t>(out, stats.sessions_admitted);
  AppendScalar<int64_t>(out, stats.sessions_rejected);
  AppendScalar<int64_t>(out, stats.sessions_served);
  AppendScalar<int64_t>(out, stats.sessions_failed);
  AppendScalar<int64_t>(out, stats.physical_scans);
  AppendScalar<int64_t>(out, stats.coalesced_sessions);
  AppendScalar<int64_t>(out, stats.batches_executed);
  AppendScalar<int64_t>(out, stats.engines_cached);
  AppendScalar<int64_t>(out, stats.engine_cache_hits);
  AppendScalar<int64_t>(out, stats.engine_cache_misses);
  AppendScalar<int64_t>(out, stats.rejected_connection_limit);
  AppendScalar<int64_t>(out, stats.rejected_admission);
  AppendScalar<int64_t>(out, stats.rejected_queue_deadline);
}

Status DecodeStatsResult(std::span<const uint8_t> payload,
                         ServerStatsSnapshot* out) {
  OPTRULES_CHECK(out != nullptr);
  ByteReader reader(payload);
  OPTRULES_RETURN_IF_ERROR(CheckKind(&reader, ServeFrameKind::kStatsResult));
  OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&out->sessions_admitted));
  OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&out->sessions_rejected));
  OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&out->sessions_served));
  OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&out->sessions_failed));
  OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&out->physical_scans));
  OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&out->coalesced_sessions));
  OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&out->batches_executed));
  OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&out->engines_cached));
  OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&out->engine_cache_hits));
  OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&out->engine_cache_misses));
  OPTRULES_RETURN_IF_ERROR(
      reader.ReadScalar(&out->rejected_connection_limit));
  OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&out->rejected_admission));
  OPTRULES_RETURN_IF_ERROR(
      reader.ReadScalar(&out->rejected_queue_deadline));
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes in stats result");
  }
  return Status::Ok();
}

// ------------------------------------------------------------- metrics ----

void EncodeMetricsReply(const obs::MetricsSnapshot& snapshot,
                        std::vector<uint8_t>* out) {
  OPTRULES_CHECK(out != nullptr);
  AppendScalar<uint8_t>(out,
                        static_cast<uint8_t>(ServeFrameKind::kMetricsReply));
  AppendScalar<uint64_t>(out,
                         static_cast<uint64_t>(snapshot.counters.size()));
  for (const auto& [name, value] : snapshot.counters) {
    AppendString(out, name);
    AppendScalar<int64_t>(out, value);
  }
  AppendScalar<uint64_t>(out, static_cast<uint64_t>(snapshot.gauges.size()));
  for (const auto& [name, value] : snapshot.gauges) {
    AppendString(out, name);
    AppendScalar<double>(out, value);
  }
  AppendScalar<uint64_t>(out,
                         static_cast<uint64_t>(snapshot.histograms.size()));
  for (const auto& [name, hist] : snapshot.histograms) {
    AppendString(out, name);
    bytes::AppendArray(out, hist.bounds);
    bytes::AppendArray(out, hist.bucket_counts);
    AppendScalar<int64_t>(out, hist.count);
    AppendScalar<double>(out, hist.sum);
  }
}

Status DecodeMetricsReply(std::span<const uint8_t> payload,
                          obs::MetricsSnapshot* out) {
  OPTRULES_CHECK(out != nullptr);
  out->counters.clear();
  out->gauges.clear();
  out->histograms.clear();
  ByteReader reader(payload);
  OPTRULES_RETURN_IF_ERROR(
      CheckKind(&reader, ServeFrameKind::kMetricsReply));
  // Entry counts need no up-front bound: every name and value read below
  // validates itself against the remaining bytes, so a hostile count
  // fails on its first truncated entry without allocating.
  uint64_t num_counters = 0;
  OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&num_counters));
  for (uint64_t i = 0; i < num_counters; ++i) {
    std::string name;
    int64_t value = 0;
    OPTRULES_RETURN_IF_ERROR(reader.ReadString(&name));
    OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&value));
    out->counters.emplace(std::move(name), value);
  }
  uint64_t num_gauges = 0;
  OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&num_gauges));
  for (uint64_t i = 0; i < num_gauges; ++i) {
    std::string name;
    double value = 0.0;
    OPTRULES_RETURN_IF_ERROR(reader.ReadString(&name));
    OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&value));
    out->gauges.emplace(std::move(name), value);
  }
  uint64_t num_histograms = 0;
  OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&num_histograms));
  for (uint64_t i = 0; i < num_histograms; ++i) {
    std::string name;
    obs::HistogramSnapshot hist;
    OPTRULES_RETURN_IF_ERROR(reader.ReadString(&name));
    OPTRULES_RETURN_IF_ERROR(reader.ReadArray(&hist.bounds));
    OPTRULES_RETURN_IF_ERROR(reader.ReadArray(&hist.bucket_counts));
    OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&hist.count));
    OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&hist.sum));
    if (hist.bucket_counts.size() != hist.bounds.size() + 1) {
      return Status::Corruption("histogram shape mismatch in metrics reply");
    }
    out->histograms.emplace(std::move(name), std::move(hist));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes in metrics reply");
  }
  return Status::Ok();
}

// --------------------------------------------------------- validation ----

uint64_t OptionsFingerprint(const rules::MinerOptions& options) {
  std::vector<uint8_t> bytes;
  AppendOptions(options, &bytes);
  Fnv1a hash;
  hash.Mix(bytes);
  return hash.digest();
}

Status ValidateSessionOptions(const rules::MinerOptions& options) {
  if (options.num_buckets < 1 || options.num_buckets > 1'000'000) {
    return Status::InvalidArgument("num_buckets out of range [1, 1e6]");
  }
  if (options.sample_per_bucket < 1 ||
      options.sample_per_bucket > 1'000'000) {
    return Status::InvalidArgument(
        "sample_per_bucket out of range [1, 1e6]");
  }
  if (options.region_grid_buckets < 1 ||
      options.region_grid_buckets > 4096) {
    return Status::InvalidArgument(
        "region_grid_buckets out of range [1, 4096]");
  }
  if (!std::isfinite(options.min_support) ||
      !std::isfinite(options.min_confidence)) {
    return Status::InvalidArgument("non-finite mining threshold");
  }
  if (!(options.gk_epsilon >= 0.0) || options.gk_epsilon >= 1.0) {
    return Status::InvalidArgument("gk_epsilon out of range [0, 1)");
  }
  return Status::Ok();
}

}  // namespace optrules::serve
