// Client/server protocol of the resident mining service.
//
// The serve layer is a TRANSPORT over the existing machinery, not a new
// protocol stack: frames travel as the dist/wire length-prefixed
// [u32 length][payload] format (WriteFrame/ReadFrame/ReadFrameTimed and
// the FrameWriter per-connection write mutex are reused verbatim), and
// payload serialization uses the same bounds-checked common/bytes.h
// primitives as the worker pipe protocol. Payload byte 0 is a
// ServeFrameKind; the values start at 32 so a serve frame accidentally
// fed to the worker protocol (or vice versa) is rejected as an unexpected
// kind instead of being half-parsed.
//
// One client session = one kOpenSession frame (table directory + mining
// options + a list of queries) answered by one kSessionResult frame (one
// tagged answer per query, in request order) or one kServeError frame.
// Sessions carry a client-assigned id echoed in the reply, so a client
// may pipeline many sessions on one connection; the server's responder
// threads multiplex replies onto the shared socket under the connection's
// FrameWriter mutex. All multi-byte values are native-endian, like the
// worker protocol: the service connects processes of one architecture.
// Doubles travel as raw bit patterns, so answers are bit-identical to a
// local MiningEngine session over the same table and options.

#ifndef OPTRULES_SERVE_PROTOCOL_H_
#define OPTRULES_SERVE_PROTOCOL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "rules/miner.h"

namespace optrules::serve {

/// First payload byte of every serve-layer frame.
enum class ServeFrameKind : uint8_t {
  kOpenSession = 32,    ///< client -> server: run one mining session
  kSessionResult = 33,  ///< server -> client: per-query answers
  kServeError = 34,     ///< server -> client: session id + status
  kPing = 35,           ///< client -> server: liveness probe
  kPong = 36,           ///< server -> client: kPing acknowledgement
  kStats = 37,           ///< client -> server: server counter snapshot
  kStatsResult = 38,     ///< server -> client: the counters
  kMetricsRequest = 39,  ///< client -> server: full registry snapshot
  kMetricsReply = 40,    ///< server -> client: the registry contents
};

/// One query of a session. `kind` selects which fields are meaningful;
/// unused fields are ignored (and travel as empty/zero).
struct ServeQuery {
  enum class Kind : uint8_t {
    kAllPairs = 0,      ///< MineAllPairs() at the session thresholds
    kPair = 1,          ///< MinePair(attr_a = numeric, attr_b = Boolean)
    kGeneralized = 2,   ///< MineGeneralized(attr_a, conditions, attr_b)
    kAverageRange = 3,  ///< MineMaximumAverageRange(attr_a, attr_b, thr)
    kSupportRange = 4,  ///< MineMaximumSupportRange(attr_a, attr_b, thr)
    kRegion = 5,        ///< MineOptimizedRegion(attr_a, attr_b, target)
  };
  Kind kind = Kind::kAllPairs;
  std::string attr_a;  ///< numeric / range / x attribute
  std::string attr_b;  ///< Boolean / target / y attribute
  std::string target;  ///< region Boolean target / generalized objective
  std::vector<std::string> conditions;  ///< generalized conjunct names
  double threshold = 0.0;  ///< min_support / min_average for kinds 3-4
  /// Region grid shape; 0 = the session's region_grid_buckets square.
  int32_t nx = 0;
  int32_t ny = 0;
};

/// One session request: which table, which mining options, which queries.
/// Sessions with identical (table generation, options) coalesce into one
/// shared MiningEngine scan server-side; the options therefore use the
/// exact MinerOptions the engine consumes, serialized field by field.
struct SessionRequest {
  std::string table_dir;  ///< PartitionedTable directory on the server
  rules::MinerOptions options;
  /// Per-session deadline in ms; 0 = the server default. A session still
  /// queued (not yet scanning) past its deadline fails with
  /// DeadlineExceeded instead of occupying the scheduler.
  int64_t deadline_ms = 0;
  std::vector<ServeQuery> queries;
};

/// One answer, tagged by the query kind it answers. `status` is per-query:
/// a failed lookup (unknown attribute) fails this answer only, never the
/// session.
struct QueryAnswer {
  Status status;
  /// kAllPairs / kPair / kGeneralized answers.
  std::vector<rules::MinedRule> rules;
  /// kAverageRange / kSupportRange answer.
  rules::MinedAggregateRange aggregate;
  /// kRegion answer.
  rules::MinedRegion region;
};

/// The reply to one session.
struct SessionReply {
  uint32_t session_id = 0;
  /// FNV-1a of the manifest bytes: the table generation this session was
  /// answered against.
  uint64_t generation = 0;
  /// True when this session's answers came from cached channels without
  /// initiating a physical counting scan of its own.
  bool coalesced = false;
  std::vector<QueryAnswer> answers;  ///< one per query, request order
};

/// Server counter snapshot (kStatsResult payload).
struct ServerStatsSnapshot {
  int64_t sessions_admitted = 0;
  /// Total admission-control refusals: rejected_connection_limit +
  /// rejected_admission (queue-deadline expiries happen after admission
  /// and count in sessions_failed instead).
  int64_t sessions_rejected = 0;
  int64_t sessions_served = 0;     ///< replied with kSessionResult
  int64_t sessions_failed = 0;     ///< replied with kServeError
  int64_t physical_scans = 0;      ///< counting scans actually run
  int64_t coalesced_sessions = 0;  ///< served without a scan of their own
  int64_t batches_executed = 0;    ///< coalescing windows flushed
  int64_t engines_cached = 0;      ///< generations currently resident
  int64_t engine_cache_hits = 0;   ///< session reused a resident engine
  int64_t engine_cache_misses = 0;  ///< session had to build an engine
  // Per-reason rejection breakdown (each also counted in
  // sessions_rejected).
  int64_t rejected_connection_limit = 0;  ///< connection cap at accept
  int64_t rejected_admission = 0;   ///< session cap or shutting down
  int64_t rejected_queue_deadline = 0;  ///< deadline expired while queued
};

/// Limits a decoder enforces on hostile input (counts validated against
/// the remaining payload bytes like the worker protocol's decoder).
inline constexpr uint32_t kMaxQueriesPerSession = 4096;

// --------------------------------------------------------- encoding ----

void EncodeOpenSession(uint32_t session_id, const SessionRequest& request,
                       std::vector<uint8_t>* out);
/// Decodes a kOpenSession payload. On any parse error, *session_id_out
/// still holds the id when the prefix reached it (0 otherwise), so the
/// server can address its error frame.
Status DecodeOpenSession(std::span<const uint8_t> payload,
                         uint32_t* session_id_out, SessionRequest* out);

void EncodeSessionResult(const SessionReply& reply,
                         std::vector<uint8_t>* out);
Status DecodeSessionResult(std::span<const uint8_t> payload,
                           SessionReply* out);

void EncodeServeError(uint32_t session_id, const Status& status,
                      std::vector<uint8_t>* out);
/// Decodes a kServeError payload into (session_id, carried status).
Status DecodeServeError(std::span<const uint8_t> payload,
                        uint32_t* session_id_out, Status* carried);

void EncodeStatsResult(const ServerStatsSnapshot& stats,
                       std::vector<uint8_t>* out);
Status DecodeStatsResult(std::span<const uint8_t> payload,
                         ServerStatsSnapshot* out);

/// Encodes a kMetricsReply payload: the full registry snapshot, map order
/// (so two encodings of one snapshot are byte-identical).
void EncodeMetricsReply(const obs::MetricsSnapshot& snapshot,
                        std::vector<uint8_t>* out);
/// Decodes a kMetricsReply payload. Entry counts and histogram shapes are
/// validated against the remaining payload bytes before any allocation.
Status DecodeMetricsReply(std::span<const uint8_t> payload,
                          obs::MetricsSnapshot* out);

/// Order-independent fingerprint of the options fields that change mined
/// bits: sessions coalesce only when their fingerprints match, because a
/// shared scan plans ONE set of boundaries from these fields.
uint64_t OptionsFingerprint(const rules::MinerOptions& options);

/// Validates decoded options against the engine's CHECK contracts so a
/// hostile request becomes an error frame, never a server abort.
Status ValidateSessionOptions(const rules::MinerOptions& options);

}  // namespace optrules::serve

#endif  // OPTRULES_SERVE_PROTOCOL_H_
