#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/bytes.h"
#include "common/timer.h"
#include "dist/manifest.h"
#include "dist/partitioned_table.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rules/miner.h"

namespace optrules::serve {

namespace {

/// Registry instruments mirroring the ServerStatsSnapshot counters (so
/// kMetricsReply and kStatsResult tell one story), plus the latency
/// distributions only the registry carries.
struct ServeMetrics {
  obs::Counter* sessions_admitted;
  obs::Counter* sessions_rejected;
  obs::Counter* sessions_served;
  obs::Counter* sessions_failed;
  obs::Counter* physical_scans;
  obs::Counter* coalesced_sessions;
  obs::Counter* batches_executed;
  obs::Counter* engine_cache_hits;
  obs::Counter* engine_cache_misses;
  obs::Counter* rejected_connection_limit;
  obs::Counter* rejected_admission;
  obs::Counter* rejected_queue_deadline;
  obs::Gauge* engines_cached;
  obs::Histogram* queue_wait_seconds;
  obs::Histogram* window_seconds;

  static const ServeMetrics& Get() {
    static const ServeMetrics metrics = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      return ServeMetrics{
          reg.GetCounter("serve.sessions_admitted"),
          reg.GetCounter("serve.sessions_rejected"),
          reg.GetCounter("serve.sessions_served"),
          reg.GetCounter("serve.sessions_failed"),
          reg.GetCounter("serve.physical_scans"),
          reg.GetCounter("serve.coalesced_sessions"),
          reg.GetCounter("serve.batches_executed"),
          reg.GetCounter("serve.engine_cache_hits"),
          reg.GetCounter("serve.engine_cache_misses"),
          reg.GetCounter("serve.rejected_connection_limit"),
          reg.GetCounter("serve.rejected_admission"),
          reg.GetCounter("serve.rejected_queue_deadline"),
          reg.GetGauge("serve.engines_cached"),
          reg.GetHistogram("serve.queue_wait_seconds"),
          reg.GetHistogram("serve.window_seconds")};
    }();
    return metrics;
  }
};

/// Per-tenant served-session counter, keyed by the options fingerprint
/// (the coalescing tenant identity). Dynamic lookup: the registry mutex
/// is fine at once-per-batch frequency.
obs::Counter* TenantSessionsCounter(uint64_t fingerprint) {
  char name[64];
  std::snprintf(name, sizeof(name), "serve.tenant.%016llx.sessions_served",
                static_cast<unsigned long long>(fingerprint));
  return obs::MetricsRegistry::Default().GetCounter(name);
}

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// FNV-1a over the raw manifest bytes: the table generation. Any rewrite
/// of the manifest -- repartition, republish, schema change -- yields a
/// new generation, so cached engines of the old table can never answer
/// for the new one.
Result<uint64_t> ManifestGeneration(const std::string& dir) {
  const std::string path = dir + "/" + dist::kManifestFileName;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("no table manifest at " + path);
  }
  bytes::Fnv1a hash;
  char buffer[4096];
  while (in.read(buffer, sizeof(buffer)) || in.gcount() > 0) {
    for (std::streamsize i = 0; i < in.gcount(); ++i) {
      hash.Mix(static_cast<uint8_t>(buffer[i]));
    }
  }
  return hash.digest();
}

/// Registers the channels `query` needs on the shared engine so the
/// batch's single scan covers it. Failures are deliberately dropped: the
/// matching Mine* call reproduces the same error as this query's
/// per-query status without failing the batch.
void PreRegisterQuery(rules::MiningEngine* engine, const ServeQuery& query) {
  switch (query.kind) {
    case ServeQuery::Kind::kGeneralized:
      (void)engine->RequestGeneralized(query.conditions);
      break;
    case ServeQuery::Kind::kAverageRange:
    case ServeQuery::Kind::kSupportRange:
      (void)engine->RequestAverageTarget(query.attr_b);
      break;
    case ServeQuery::Kind::kRegion:
      if (query.nx > 0 && query.ny > 0) {
        (void)engine->RequestRegionPair(query.attr_a, query.attr_b,
                                        query.nx, query.ny);
      } else {
        (void)engine->RequestRegionPair(query.attr_a, query.attr_b);
      }
      break;
    case ServeQuery::Kind::kAllPairs:
    case ServeQuery::Kind::kPair:
      break;  // covered by the base channels of every scan
  }
}

/// Answers one query from the prepared engine's cached channels. Errors
/// (unknown attribute, wrong attribute kind) land in the answer's status:
/// per-query isolation, never a session or batch failure.
QueryAnswer AnswerQuery(rules::MiningEngine* engine,
                        const ServeQuery& query) {
  QueryAnswer answer;
  switch (query.kind) {
    case ServeQuery::Kind::kAllPairs:
      answer.rules = engine->MineAllPairs();
      break;
    case ServeQuery::Kind::kPair: {
      auto result = engine->MinePair(query.attr_a, query.attr_b);
      if (result.ok()) {
        answer.rules = std::move(result).value();
      } else {
        answer.status = result.status();
      }
      break;
    }
    case ServeQuery::Kind::kGeneralized: {
      auto result = engine->MineGeneralized(query.attr_a, query.conditions,
                                            query.attr_b);
      if (result.ok()) {
        answer.rules = std::move(result).value();
      } else {
        answer.status = result.status();
      }
      break;
    }
    case ServeQuery::Kind::kAverageRange: {
      auto result = engine->MineMaximumAverageRange(
          query.attr_a, query.attr_b, query.threshold);
      if (result.ok()) {
        answer.aggregate = std::move(result).value();
      } else {
        answer.status = result.status();
      }
      break;
    }
    case ServeQuery::Kind::kSupportRange: {
      auto result = engine->MineMaximumSupportRange(
          query.attr_a, query.attr_b, query.threshold);
      if (result.ok()) {
        answer.aggregate = std::move(result).value();
      } else {
        answer.status = result.status();
      }
      break;
    }
    case ServeQuery::Kind::kRegion: {
      auto result = engine->MineOptimizedRegion(query.attr_a, query.attr_b,
                                                query.target);
      if (result.ok()) {
        answer.region = std::move(result).value();
      } else {
        answer.status = result.status();
      }
      break;
    }
  }
  return answer;
}

}  // namespace

/// One client socket. The fd stays open until the last reference (handler
/// thread or queued session) drops, so the scheduler can always write a
/// reply; writes serialize through `writer`.
struct MiningServer::Connection {
  explicit Connection(int fd) : fd(fd), writer(fd) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
  int fd;
  dist::FrameWriter writer;
};

/// A resident engine: the opened table (heap-allocated -- the engine
/// keeps a pointer to it) plus the session answering from it.
struct MiningServer::CachedEngine {
  std::unique_ptr<dist::PartitionedTable> table;
  std::unique_ptr<rules::MiningEngine> engine;
};

MiningServer::MiningServer(ServerOptions options)
    : options_(std::move(options)) {
  // Register the serve instruments up front so an operator's SIGUSR1
  // dump (or a kMetricsRequest) against an idle daemon lists them at
  // zero instead of returning an empty registry.
  ServeMetrics::Get();
}

MiningServer::~MiningServer() { Stop(); }

Status MiningServer::ListenUnix(const std::string& path) {
  sockaddr_un addr{};
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unusable unix socket path: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  ::unlink(path.c_str());
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("bind " + path + ": " + std::strerror(err));
  }
  if (::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("listen " + path + ": " + std::strerror(err));
  }
  listen_fd_ = fd;
  address_ = path;
  unlink_path_ = path;
  return Status::Ok();
}

Status MiningServer::ListenTcp(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError(std::string("bind: ") + std::strerror(err));
  }
  if (::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError(std::string("listen: ") + std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError(std::string("getsockname: ") +
                           std::strerror(err));
  }
  listen_fd_ = fd;
  port_ = ntohs(bound.sin_port);
  address_ = "127.0.0.1:" + std::to_string(port_);
  return Status::Ok();
}

Status MiningServer::Start() {
  if (listen_fd_ < 0) {
    return Status::InvalidArgument("Start() before a successful Listen*()");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return Status::InvalidArgument("server already started");
    started_ = true;
  }
  // A client closing mid-reply must surface as a write error on that
  // connection, not kill the process.
  std::signal(SIGPIPE, SIG_IGN);
  accept_thread_ = std::thread(&MiningServer::AcceptLoop, this);
  scheduler_thread_ = std::thread(&MiningServer::SchedulerLoop, this);
  return Status::Ok();
}

void MiningServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    stopping_ = true;
    stop_deadline_ms_ = NowMs() + options_.drain_deadline_ms;
    scheduler_cv_.notify_all();
  }
  // Wake the accept poll, then the threads exit on their own.
  if (accept_thread_.joinable()) accept_thread_.join();
  if (scheduler_thread_.joinable()) scheduler_thread_.join();
  {
    // Unblock every connection reader (and any writer stuck against a
    // full socket buffer), then wait for the detached handlers to unwind.
    std::unique_lock<std::mutex> lock(mu_);
    for (const std::shared_ptr<Connection>& conn : connections_) {
      ::shutdown(conn->fd, SHUT_RDWR);
    }
    handlers_cv_.wait(lock, [this] { return active_handlers_ == 0; });
    connections_.clear();
  }
  // Releasing the engines tears down their coordinators' worker rosters:
  // subprocess workers get the WNOHANG -> SIGTERM -> SIGKILL escalation,
  // so a wedged worker cannot outlive the server either.
  engines_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!unlink_path_.empty()) {
    ::unlink(unlink_path_.c_str());
    unlink_path_.clear();
  }
}

ServerStatsSnapshot MiningServer::Stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void MiningServer::AcceptLoop() {
  for (;;) {
    pollfd probe{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&probe, 1, /*timeout_ms=*/100);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
    }
    if (ready <= 0) continue;
    const int client_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) continue;
    if (options_.send_timeout_ms > 0) {
      timeval timeout{};
      timeout.tv_sec = options_.send_timeout_ms / 1000;
      timeout.tv_usec =
          static_cast<suseconds_t>((options_.send_timeout_ms % 1000) * 1000);
      ::setsockopt(client_fd, SOL_SOCKET, SO_SNDTIMEO, &timeout,
                   sizeof(timeout));
    }
    auto conn = std::make_shared<Connection>(client_fd);
    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!stopping_ &&
          connections_.size() <
              static_cast<size_t>(std::max(1, options_.max_connections))) {
        connections_.push_back(conn);
        ++active_handlers_;
        admitted = true;
      }
    }
    if (!admitted) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.sessions_rejected;
        ++stats_.rejected_connection_limit;
      }
      ServeMetrics::Get().sessions_rejected->Add();
      ServeMetrics::Get().rejected_connection_limit->Add();
      WriteError(conn, 0,
                 Status::OutOfRange("connection limit reached"));
      continue;  // conn's destructor closes the socket
    }
    std::thread(&MiningServer::HandleConnection, this, std::move(conn))
        .detach();
  }
}

void MiningServer::HandleConnection(std::shared_ptr<Connection> conn) {
  std::vector<uint8_t> payload;
  for (;;) {
    const Status read = dist::ReadFrame(conn->fd, &payload);
    // NotFound = clean close, Corruption = broken framing; either way
    // this connection's stream is done (but its queued sessions still
    // get their replies through the shared_ptr the scheduler holds).
    if (!read.ok()) break;
    if (payload.empty()) break;
    switch (static_cast<ServeFrameKind>(payload[0])) {
      case ServeFrameKind::kPing: {
        std::vector<uint8_t> pong;
        bytes::AppendScalar<uint8_t>(
            &pong, static_cast<uint8_t>(ServeFrameKind::kPong));
        pong.insert(pong.end(), payload.begin() + 1, payload.end());
        (void)conn->writer.Write(pong);
        break;
      }
      case ServeFrameKind::kStats: {
        std::vector<uint8_t> out;
        EncodeStatsResult(Stats(), &out);
        (void)conn->writer.Write(out);
        break;
      }
      case ServeFrameKind::kMetricsRequest: {
        std::vector<uint8_t> out;
        EncodeMetricsReply(obs::MetricsRegistry::Default().Snapshot(),
                           &out);
        (void)conn->writer.Write(out);
        break;
      }
      case ServeFrameKind::kOpenSession:
        HandleOpenSession(conn, payload);
        break;
      default:
        // An unknown kind is a well-framed mistake: report and keep the
        // connection (its other sessions are unaffected).
        WriteError(conn, 0,
                   Status::InvalidArgument("unknown serve frame kind"));
        break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    connections_.erase(
        std::remove(connections_.begin(), connections_.end(), conn),
        connections_.end());
    --active_handlers_;
    handlers_cv_.notify_all();
  }
}

void MiningServer::HandleOpenSession(const std::shared_ptr<Connection>& conn,
                                     std::span<const uint8_t> payload) {
  uint32_t session_id = 0;
  SessionRequest request;
  Status status = DecodeOpenSession(payload, &session_id, &request);
  if (status.ok()) status = ValidateSessionOptions(request.options);
  uint64_t generation = 0;
  if (status.ok()) {
    Result<uint64_t> gen = ManifestGeneration(request.table_dir);
    if (gen.ok()) {
      generation = gen.value();
    } else {
      status = gen.status();
    }
  }
  if (!status.ok()) {
    // This session's fault alone: reply and keep reading the connection.
    FailSession(conn, session_id, status);
    return;
  }

  EngineKey key{request.table_dir, generation,
                OptionsFingerprint(request.options)};
  PendingSession session;
  session.conn = conn;
  session.session_id = session_id;
  session.enqueue_ms = NowMs();
  session.deadline_ms = request.deadline_ms > 0
                            ? request.deadline_ms
                            : options_.default_deadline_ms;
  session.request = std::move(request);

  Status refusal;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      refusal = Status::OutOfRange("server shutting down");
    } else if (pending_sessions_ >=
               std::max(1, options_.max_pending_sessions)) {
      refusal = Status::OutOfRange("session admission limit reached");
    } else {
      Batch& batch = batches_[key];
      if (batch.sessions.empty()) {
        batch.due_ms = session.enqueue_ms + options_.coalescing_window_ms;
      }
      batch.sessions.push_back(std::move(session));
      ++pending_sessions_;
      scheduler_cv_.notify_all();
    }
  }
  if (!refusal.ok()) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.sessions_rejected;
      ++stats_.rejected_admission;
    }
    ServeMetrics::Get().sessions_rejected->Add();
    ServeMetrics::Get().rejected_admission->Add();
    WriteError(conn, session_id, refusal);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.sessions_admitted;
  }
  ServeMetrics::Get().sessions_admitted->Add();
}

void MiningServer::SchedulerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (batches_.empty()) {
      if (stopping_) return;
      scheduler_cv_.wait(lock, [this] {
        return stopping_ || !batches_.empty();
      });
      continue;
    }
    auto due_it = batches_.begin();
    for (auto it = std::next(batches_.begin()); it != batches_.end(); ++it) {
      if (it->second.due_ms < due_it->second.due_ms) due_it = it;
    }
    const int64_t now = NowMs();
    if (!stopping_ && due_it->second.due_ms > now) {
      scheduler_cv_.wait_for(
          lock, std::chrono::milliseconds(due_it->second.due_ms - now));
      continue;  // re-pick: a new batch may be due earlier
    }
    const EngineKey key = due_it->first;
    Batch batch = std::move(due_it->second);
    batches_.erase(due_it);
    const int batch_size = static_cast<int>(batch.sessions.size());
    const bool drain_expired = stopping_ && NowMs() > stop_deadline_ms_;
    lock.unlock();
    if (drain_expired) {
      for (const PendingSession& session : batch.sessions) {
        FailSession(session.conn, session.session_id,
                    Status::DeadlineExceeded(
                        "server drained past its shutdown deadline"));
      }
    } else {
      ExecuteBatch(key, std::move(batch));
    }
    lock.lock();
    pending_sessions_ -= batch_size;
  }
}

void MiningServer::ExecuteBatch(const EngineKey& key, Batch batch) {
  // Queue-deadline sweep first: a session that waited out its deadline
  // fails without costing the batch anything.
  std::vector<PendingSession> live;
  live.reserve(batch.sessions.size());
  const int64_t start_ms = NowMs();
  for (PendingSession& session : batch.sessions) {
    if (start_ms - session.enqueue_ms > session.deadline_ms) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.rejected_queue_deadline;
      }
      ServeMetrics::Get().rejected_queue_deadline->Add();
      FailSession(session.conn, session.session_id,
                  Status::DeadlineExceeded("session deadline expired in "
                                           "the scheduler queue"));
    } else {
      ServeMetrics::Get().queue_wait_seconds->Observe(
          static_cast<double>(start_ms - session.enqueue_ms) / 1e3);
      live.push_back(std::move(session));
    }
  }
  if (live.empty()) return;

  // The coalescing window's span: the shared scan below (dist.scan and
  // its per-partition children) nests under it because TryPrepare runs on
  // this same scheduler thread.
  obs::Span window_span("serve.window");
  window_span.AddAttribute("sessions", static_cast<double>(live.size()));
  WallTimer window_timer;

  Result<CachedEngine*> cached_or =
      GetOrCreateEngine(key, live.front().request.options);
  if (!cached_or.ok()) {
    for (const PendingSession& session : live) {
      FailSession(session.conn, session.session_id, cached_or.status());
    }
    return;
  }
  rules::MiningEngine* engine = cached_or.value()->engine.get();
  const int64_t scans_before = engine->counting_scans();

  // Register EVERY session's channels before preparing, so one scan
  // covers the whole window (late channels on an already-prepared cached
  // engine cost supplemental scans, counted in the delta below).
  for (const PendingSession& session : live) {
    for (const ServeQuery& query : session.request.queries) {
      PreRegisterQuery(engine, query);
    }
  }
  const Status prepared = engine->TryPrepare();
  if (!prepared.ok()) {
    // The shared scan itself failed (table vanished, workers dead):
    // every session of the batch fails, and the engine is dropped so the
    // next window starts fresh.
    for (const PendingSession& session : live) {
      FailSession(session.conn, session.session_id, prepared);
    }
    engines_.remove_if([&key](const auto& entry) {
      return entry.first == key;
    });
    return;
  }

  std::vector<SessionReply> replies(live.size());
  for (size_t i = 0; i < live.size(); ++i) {
    replies[i].session_id = live[i].session_id;
    replies[i].generation = key.generation;
    replies[i].answers.reserve(live[i].request.queries.size());
    for (const ServeQuery& query : live[i].request.queries) {
      replies[i].answers.push_back(AnswerQuery(engine, query));
    }
  }
  const int64_t scan_delta = engine->counting_scans() - scans_before;

  // Commit the batch's counters BEFORE shipping replies: a client holding
  // its answer must see a stats snapshot that includes the batch that
  // produced it (the load harness and tests read stats immediately after
  // a reply). Write failures are re-classified below.
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.sessions_served += static_cast<int64_t>(live.size());
    stats_.physical_scans += scan_delta;
    stats_.coalesced_sessions +=
        std::max<int64_t>(0, static_cast<int64_t>(live.size()) - scan_delta);
    ++stats_.batches_executed;
    stats_.engines_cached = static_cast<int64_t>(engines_.size());
  }
  const ServeMetrics& metrics = ServeMetrics::Get();
  metrics.sessions_served->Add(static_cast<int64_t>(live.size()));
  metrics.physical_scans->Add(scan_delta);
  metrics.coalesced_sessions->Add(
      std::max<int64_t>(0, static_cast<int64_t>(live.size()) - scan_delta));
  metrics.batches_executed->Add();
  metrics.engines_cached->Set(static_cast<double>(engines_.size()));
  TenantSessionsCounter(key.options_fingerprint)
      ->Add(static_cast<int64_t>(live.size()));
  window_span.AddAttribute("physical_scans",
                           static_cast<double>(scan_delta));
  metrics.window_seconds->Observe(window_timer.ElapsedSeconds());

  int64_t write_failures = 0;
  for (size_t i = 0; i < live.size(); ++i) {
    // Arrival order: the sessions whose channels rode an existing or
    // shared scan -- everyone past the first `scan_delta` -- coalesced.
    replies[i].coalesced = static_cast<int64_t>(i) >= scan_delta;
    std::vector<uint8_t> frame;
    EncodeSessionResult(replies[i], &frame);
    if (!live[i].conn->writer.Write(frame).ok()) {
      ++write_failures;  // client gone or wedged; its loss alone
    }
  }
  if (write_failures > 0) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.sessions_served -= write_failures;
      stats_.sessions_failed += write_failures;
    }
    // Registry counters are monotone, so the served mirror keeps the
    // optimistic count; only the failure counter records the loss.
    metrics.sessions_failed->Add(write_failures);
  }
}

Result<MiningServer::CachedEngine*> MiningServer::GetOrCreateEngine(
    const EngineKey& key, const rules::MinerOptions& options) {
  for (auto it = engines_.begin(); it != engines_.end(); ++it) {
    if (it->first == key) {
      engines_.splice(engines_.begin(), engines_, it);
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.engine_cache_hits;
      }
      ServeMetrics::Get().engine_cache_hits->Add();
      return engines_.front().second.get();
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.engine_cache_misses;
  }
  ServeMetrics::Get().engine_cache_misses->Add();
  Result<dist::PartitionedTable> table_or =
      dist::PartitionedTable::Open(key.table_dir);
  if (!table_or.ok()) return table_or.status();
  auto cached = std::make_unique<CachedEngine>();
  cached->table = std::make_unique<dist::PartitionedTable>(
      std::move(table_or).value());
  cached->engine = std::make_unique<rules::MiningEngine>(
      cached->table.get(), options, options_.scan_options);
  engines_.emplace_front(key, std::move(cached));
  const size_t capacity =
      static_cast<size_t>(std::max(1, options_.max_cached_engines));
  while (engines_.size() > capacity) engines_.pop_back();
  return engines_.front().second.get();
}

void MiningServer::FailSession(const std::shared_ptr<Connection>& conn,
                               uint32_t session_id, const Status& status) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.sessions_failed;
  }
  ServeMetrics::Get().sessions_failed->Add();
  WriteError(conn, session_id, status);
}

void MiningServer::WriteError(const std::shared_ptr<Connection>& conn,
                              uint32_t session_id, const Status& status) {
  std::vector<uint8_t> frame;
  EncodeServeError(session_id, status, &frame);
  (void)conn->writer.Write(frame);
}

}  // namespace optrules::serve
