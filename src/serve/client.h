// MiningClient: the blocking client of the resident mining service.
//
// One client = one connection = one thread's view of the service: the
// calls are synchronous (send a frame, read frames until the matching
// reply), so a multi-tenant load generator runs one client per tenant
// thread. Session ids are assigned by the client and echoed by the
// server, which is what lets hostile-frame tests address a deliberately
// corrupt session and watch only THAT session fail.

#ifndef OPTRULES_SERVE_CLIENT_H_
#define OPTRULES_SERVE_CLIENT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "dist/wire.h"
#include "serve/protocol.h"

namespace optrules::serve {

class MiningClient {
 public:
  /// Connects to a Unix-domain socket (a MiningServer::ListenUnix path).
  static Result<MiningClient> ConnectUnix(const std::string& path);
  /// Connects to 127.0.0.1:`port` (a MiningServer::ListenTcp port).
  static Result<MiningClient> ConnectTcp(uint16_t port);

  MiningClient(MiningClient&& other) noexcept;
  MiningClient& operator=(MiningClient&& other) noexcept;
  MiningClient(const MiningClient&) = delete;
  MiningClient& operator=(const MiningClient&) = delete;
  ~MiningClient();

  /// Read timeouts applied to every reply wait; zeros = block forever.
  void set_timeouts(dist::FrameTimeouts timeouts) { timeouts_ = timeouts; }

  /// Runs one session end to end: assigns the next session id, sends the
  /// request, and blocks for this session's kSessionResult. A server-side
  /// session failure (kServeError) comes back as the carried status; a
  /// transport failure as an IoError/Corruption status.
  Result<SessionReply> RunSession(const SessionRequest& request);

  /// Round-trips a kPing.
  Status Ping();

  /// Fetches the server's counter snapshot.
  Result<ServerStatsSnapshot> Stats();

  /// Fetches the server process's full metrics-registry snapshot
  /// (kMetricsRequest/kMetricsReply): every counter, gauge, and histogram
  /// the daemon's subsystems report, not just the serve-layer counters.
  Result<obs::MetricsSnapshot> Metrics();

  /// Escape hatches for protocol tests: ship an arbitrary payload as one
  /// frame / read the next raw frame.
  Status SendRaw(std::span<const uint8_t> payload);
  Status ReadRaw(std::vector<uint8_t>* payload);

  int fd() const { return fd_; }

 private:
  explicit MiningClient(int fd) : fd_(fd) {}
  void Close();

  int fd_ = -1;
  uint32_t next_session_id_ = 1;
  dist::FrameTimeouts timeouts_;
};

}  // namespace optrules::serve

#endif  // OPTRULES_SERVE_CLIENT_H_
