#include "serve/client.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/bytes.h"

namespace optrules::serve {

Result<MiningClient> MiningClient::ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unusable unix socket path: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("connect " + path + ": " + std::strerror(err));
  }
  return MiningClient(fd);
}

Result<MiningClient> MiningClient::ConnectTcp(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("connect 127.0.0.1:" + std::to_string(port) +
                           ": " + std::strerror(err));
  }
  return MiningClient(fd);
}

MiningClient::MiningClient(MiningClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_session_id_(other.next_session_id_),
      timeouts_(other.timeouts_) {}

MiningClient& MiningClient::operator=(MiningClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    next_session_id_ = other.next_session_id_;
    timeouts_ = other.timeouts_;
  }
  return *this;
}

MiningClient::~MiningClient() { Close(); }

void MiningClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<SessionReply> MiningClient::RunSession(
    const SessionRequest& request) {
  const uint32_t session_id = next_session_id_++;
  std::vector<uint8_t> frame;
  EncodeOpenSession(session_id, request, &frame);
  OPTRULES_RETURN_IF_ERROR(dist::WriteFrame(fd_, frame));
  // Read until THIS session's reply: a pipelining client may see pongs
  // or other sessions' replies in between (they are simply skipped here;
  // concurrent tenants use one client each).
  for (;;) {
    std::vector<uint8_t> payload;
    OPTRULES_RETURN_IF_ERROR(dist::ReadFrameTimed(fd_, &payload, timeouts_));
    if (payload.empty()) {
      return Status::Corruption("empty frame from mining server");
    }
    switch (static_cast<ServeFrameKind>(payload[0])) {
      case ServeFrameKind::kSessionResult: {
        SessionReply reply;
        OPTRULES_RETURN_IF_ERROR(DecodeSessionResult(payload, &reply));
        if (reply.session_id != session_id) continue;
        return reply;
      }
      case ServeFrameKind::kServeError: {
        uint32_t errored_id = 0;
        Status carried;
        OPTRULES_RETURN_IF_ERROR(
            DecodeServeError(payload, &errored_id, &carried));
        if (errored_id != session_id && errored_id != 0) continue;
        return carried;
      }
      default:
        continue;  // pong / stats for someone else's call
    }
  }
}

Status MiningClient::Ping() {
  std::vector<uint8_t> frame;
  bytes::AppendScalar<uint8_t>(&frame,
                               static_cast<uint8_t>(ServeFrameKind::kPing));
  OPTRULES_RETURN_IF_ERROR(dist::WriteFrame(fd_, frame));
  std::vector<uint8_t> payload;
  OPTRULES_RETURN_IF_ERROR(dist::ReadFrameTimed(fd_, &payload, timeouts_));
  if (payload.empty() ||
      payload[0] != static_cast<uint8_t>(ServeFrameKind::kPong)) {
    return Status::Corruption("expected kPong from mining server");
  }
  return Status::Ok();
}

Result<ServerStatsSnapshot> MiningClient::Stats() {
  std::vector<uint8_t> frame;
  bytes::AppendScalar<uint8_t>(&frame,
                               static_cast<uint8_t>(ServeFrameKind::kStats));
  OPTRULES_RETURN_IF_ERROR(dist::WriteFrame(fd_, frame));
  std::vector<uint8_t> payload;
  OPTRULES_RETURN_IF_ERROR(dist::ReadFrameTimed(fd_, &payload, timeouts_));
  ServerStatsSnapshot stats;
  OPTRULES_RETURN_IF_ERROR(DecodeStatsResult(payload, &stats));
  return stats;
}

Result<obs::MetricsSnapshot> MiningClient::Metrics() {
  std::vector<uint8_t> frame;
  bytes::AppendScalar<uint8_t>(
      &frame, static_cast<uint8_t>(ServeFrameKind::kMetricsRequest));
  OPTRULES_RETURN_IF_ERROR(dist::WriteFrame(fd_, frame));
  std::vector<uint8_t> payload;
  OPTRULES_RETURN_IF_ERROR(dist::ReadFrameTimed(fd_, &payload, timeouts_));
  obs::MetricsSnapshot snapshot;
  OPTRULES_RETURN_IF_ERROR(DecodeMetricsReply(payload, &snapshot));
  return snapshot;
}

Status MiningClient::SendRaw(std::span<const uint8_t> payload) {
  return dist::WriteFrame(fd_, payload);
}

Status MiningClient::ReadRaw(std::vector<uint8_t>* payload) {
  return dist::ReadFrameTimed(fd_, payload, timeouts_);
}

}  // namespace optrules::serve
