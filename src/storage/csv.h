// CSV import/export for Relation.
//
// Format: a header line of `name:kind` fields (kind in {numeric, boolean}),
// then one line per row. Boolean cells are `0/1` or `yes/no`. This is the
// interchange path for the examples; the benchmark harness uses the binary
// PagedFile layout instead.

#ifndef OPTRULES_STORAGE_CSV_H_
#define OPTRULES_STORAGE_CSV_H_

#include <string>

#include "common/status.h"
#include "storage/relation.h"

namespace optrules::storage {

/// Writes `relation` to `path`; overwrites any existing file.
Status WriteCsv(const Relation& relation, const std::string& path);

/// Reads a relation from `path`. Fails with InvalidArgument/Corruption on
/// malformed headers or cells, IoError if the file cannot be opened.
Result<Relation> ReadCsv(const std::string& path);

}  // namespace optrules::storage

#endif  // OPTRULES_STORAGE_CSV_H_
