#include "storage/external_sort.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <queue>
#include <vector>

#include "common/logging.h"

namespace optrules::storage {

namespace {

double KeyAt(const uint8_t* record, size_t key_offset) {
  double key;
  std::memcpy(&key, record + key_offset, sizeof(double));
  return key;
}

/// Comparator: double key first, full record bytes as tie-break.
struct RecordLess {
  size_t record_bytes;
  size_t key_offset;
  bool operator()(const uint8_t* a, const uint8_t* b) const {
    const double ka = KeyAt(a, key_offset);
    const double kb = KeyAt(b, key_offset);
    if (ka != kb) return ka < kb;
    return std::memcmp(a, b, record_bytes) < 0;
  }
};

/// RAII stdio handle.
struct File {
  std::FILE* f = nullptr;
  ~File() {
    if (f != nullptr) std::fclose(f);
  }
  std::FILE* release() {
    std::FILE* out = f;
    f = nullptr;
    return out;
  }
};

/// Records fread straight out of an open file (does not own the handle).
class FileRecordSource final : public RecordSource {
 public:
  FileRecordSource(std::FILE* file, size_t record_bytes)
      : file_(file), record_bytes_(record_bytes) {}

  size_t ReadRecords(uint8_t* out, size_t max_records) override {
    return std::fread(out, record_bytes_, max_records, file_);
  }

 private:
  std::FILE* file_;
  size_t record_bytes_;
};

/// Buffered reader of one sorted run during the merge phase.
class RunReader {
 public:
  RunReader(std::FILE* file, size_t record_bytes, size_t buffer_records)
      : file_(file),
        record_bytes_(record_bytes),
        buffer_(buffer_records * record_bytes) {}

  ~RunReader() {
    if (file_ != nullptr) std::fclose(file_);
  }
  RunReader(const RunReader&) = delete;
  RunReader& operator=(const RunReader&) = delete;

  /// Returns the current record, or nullptr when the run is exhausted.
  const uint8_t* Peek() {
    if (position_ >= records_in_buffer_) {
      const size_t got = std::fread(buffer_.data(), record_bytes_,
                                    buffer_.size() / record_bytes_, file_);
      records_in_buffer_ = got;
      position_ = 0;
      if (got == 0) return nullptr;
    }
    return buffer_.data() + position_ * record_bytes_;
  }

  void Pop() { ++position_; }

 private:
  std::FILE* file_;
  size_t record_bytes_;
  std::vector<uint8_t> buffer_;
  size_t records_in_buffer_ = 0;
  size_t position_ = 0;
};

}  // namespace

Result<ExternalSortStats> ExternalSortRecords(
    RecordSource& source, const std::string& output_path,
    std::span<const uint8_t> header, const ExternalSortOptions& options) {
  if (options.record_bytes == 0) {
    return Status::InvalidArgument("record_bytes must be > 0");
  }
  if (options.key_offset + sizeof(double) > options.record_bytes) {
    return Status::InvalidArgument("key does not fit in record");
  }

  // Phase 1: run generation.
  const size_t records_per_run =
      std::max<size_t>(1, options.memory_budget_bytes / options.record_bytes);
  std::vector<uint8_t> chunk(records_per_run * options.record_bytes);
  std::vector<const uint8_t*> pointers;
  std::vector<std::string> run_paths;
  int64_t total_records = 0;

  const RecordLess less{options.record_bytes, options.key_offset};
  while (true) {
    const size_t got = source.ReadRecords(chunk.data(), records_per_run);
    if (got == 0) break;
    total_records += static_cast<int64_t>(got);
    pointers.clear();
    pointers.reserve(got);
    for (size_t i = 0; i < got; ++i) {
      pointers.push_back(chunk.data() + i * options.record_bytes);
    }
    std::sort(pointers.begin(), pointers.end(), less);

    const std::string run_path = options.temp_dir + "/optrules_run_" +
                                 std::to_string(run_paths.size()) + "_" +
                                 std::to_string(
                                     reinterpret_cast<uintptr_t>(&chunk)) +
                                 ".tmp";
    File run;
    run.f = std::fopen(run_path.c_str(), "wb");
    if (run.f == nullptr) {
      return Status::IoError("cannot create run file: " + run_path);
    }
    for (const uint8_t* rec : pointers) {
      if (std::fwrite(rec, 1, options.record_bytes, run.f) !=
          options.record_bytes) {
        return Status::IoError("run write failed: " + run_path);
      }
    }
    if (std::fclose(run.release()) != 0) {
      return Status::IoError("run close failed: " + run_path);
    }
    run_paths.push_back(run_path);
  }

  // Phase 2: k-way merge into the output.
  File output;
  output.f = std::fopen(output_path.c_str(), "wb");
  if (output.f == nullptr) {
    return Status::IoError("cannot create: " + output_path);
  }
  if (!header.empty() &&
      std::fwrite(header.data(), 1, header.size(), output.f) !=
          header.size()) {
    return Status::IoError("header write failed: " + output_path);
  }

  std::vector<std::unique_ptr<RunReader>> readers;
  readers.reserve(run_paths.size());
  const size_t merge_buffer_records = std::max<size_t>(
      16, options.memory_budget_bytes /
              (options.record_bytes * std::max<size_t>(1, run_paths.size()) *
               2));
  for (const std::string& run_path : run_paths) {
    std::FILE* f = std::fopen(run_path.c_str(), "rb");
    if (f == nullptr) return Status::IoError("cannot reopen: " + run_path);
    readers.push_back(std::make_unique<RunReader>(f, options.record_bytes,
                                                  merge_buffer_records));
  }

  using HeapEntry = std::pair<const uint8_t*, size_t>;  // record, reader idx
  auto heap_greater = [&less](const HeapEntry& a, const HeapEntry& b) {
    return less(b.first, a.first);
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      decltype(heap_greater)>
      heap(heap_greater);
  for (size_t i = 0; i < readers.size(); ++i) {
    const uint8_t* rec = readers[i]->Peek();
    if (rec != nullptr) heap.emplace(rec, i);
  }
  while (!heap.empty()) {
    auto [rec, idx] = heap.top();
    heap.pop();
    if (std::fwrite(rec, 1, options.record_bytes, output.f) !=
        options.record_bytes) {
      return Status::IoError("output write failed: " + output_path);
    }
    readers[idx]->Pop();
    const uint8_t* next = readers[idx]->Peek();
    if (next != nullptr) heap.emplace(next, idx);
  }
  if (std::fclose(output.release()) != 0) {
    return Status::IoError("output close failed: " + output_path);
  }
  readers.clear();
  for (const std::string& run_path : run_paths) {
    std::remove(run_path.c_str());
  }

  ExternalSortStats stats;
  stats.num_records = total_records;
  stats.num_runs = static_cast<int>(run_paths.size());
  return stats;
}

Result<ExternalSortStats> ExternalSort(const std::string& input_path,
                                       const std::string& output_path,
                                       const ExternalSortOptions& options) {
  if (options.record_bytes == 0) {
    return Status::InvalidArgument("record_bytes must be > 0");
  }
  if (options.key_offset + sizeof(double) > options.record_bytes) {
    return Status::InvalidArgument("key does not fit in record");
  }

  File input;
  input.f = std::fopen(input_path.c_str(), "rb");
  if (input.f == nullptr) {
    return Status::IoError("cannot open: " + input_path);
  }

  std::vector<uint8_t> header(options.header_bytes);
  if (options.header_bytes > 0 &&
      std::fread(header.data(), 1, header.size(), input.f) != header.size()) {
    return Status::Corruption("short header: " + input_path);
  }

  FileRecordSource source(input.f, options.record_bytes);
  return ExternalSortRecords(source, output_path, header, options);
}

}  // namespace optrules::storage
