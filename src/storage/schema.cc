#include "storage/schema.h"

namespace optrules::storage {

const char* AttrKindName(AttrKind kind) {
  return kind == AttrKind::kNumeric ? "numeric" : "boolean";
}

Result<Schema> Schema::Create(std::vector<Attribute> attributes) {
  Schema schema;
  schema.attributes_ = std::move(attributes);
  for (const Attribute& attr : schema.attributes_) {
    if (attr.name.empty()) {
      return Status::InvalidArgument("attribute with empty name");
    }
    if (attr.kind == AttrKind::kNumeric) {
      auto [it, inserted] =
          schema.numeric_index_.emplace(attr.name, schema.num_numeric_);
      if (!inserted) {
        return Status::InvalidArgument("duplicate attribute name: " +
                                       attr.name);
      }
      if (schema.boolean_index_.count(attr.name) > 0) {
        return Status::InvalidArgument("duplicate attribute name: " +
                                       attr.name);
      }
      schema.numeric_names_.push_back(attr.name);
      ++schema.num_numeric_;
    } else {
      auto [it, inserted] =
          schema.boolean_index_.emplace(attr.name, schema.num_boolean_);
      if (!inserted) {
        return Status::InvalidArgument("duplicate attribute name: " +
                                       attr.name);
      }
      if (schema.numeric_index_.count(attr.name) > 0) {
        return Status::InvalidArgument("duplicate attribute name: " +
                                       attr.name);
      }
      schema.boolean_names_.push_back(attr.name);
      ++schema.num_boolean_;
    }
  }
  return schema;
}

Schema Schema::Synthetic(int num_numeric, int num_boolean) {
  OPTRULES_CHECK(num_numeric >= 0 && num_boolean >= 0);
  std::vector<Attribute> attrs;
  attrs.reserve(static_cast<size_t>(num_numeric + num_boolean));
  for (int i = 0; i < num_numeric; ++i) {
    attrs.push_back({"num" + std::to_string(i), AttrKind::kNumeric});
  }
  for (int i = 0; i < num_boolean; ++i) {
    attrs.push_back({"bool" + std::to_string(i), AttrKind::kBoolean});
  }
  Result<Schema> schema = Create(std::move(attrs));
  OPTRULES_CHECK(schema.ok());
  return std::move(schema).value();
}

Result<int> Schema::NumericIndexOf(const std::string& name) const {
  auto it = numeric_index_.find(name);
  if (it == numeric_index_.end()) {
    return Status::NotFound("no numeric attribute named " + name);
  }
  return it->second;
}

Result<int> Schema::BooleanIndexOf(const std::string& name) const {
  auto it = boolean_index_.find(name);
  if (it == boolean_index_.end()) {
    return Status::NotFound("no boolean attribute named " + name);
  }
  return it->second;
}

const std::string& Schema::NumericName(int i) const {
  OPTRULES_CHECK(0 <= i && i < num_numeric_);
  return numeric_names_[static_cast<size_t>(i)];
}

const std::string& Schema::BooleanName(int i) const {
  OPTRULES_CHECK(0 <= i && i < num_boolean_);
  return boolean_names_[static_cast<size_t>(i)];
}

bool operator==(const Schema& a, const Schema& b) {
  if (a.attributes_.size() != b.attributes_.size()) return false;
  for (size_t i = 0; i < a.attributes_.size(); ++i) {
    if (a.attributes_[i].name != b.attributes_[i].name ||
        a.attributes_[i].kind != b.attributes_[i].kind) {
      return false;
    }
  }
  return true;
}

}  // namespace optrules::storage
