// Shared LRU page cache for the paged read path.
//
// Every disk-resident scan used to fread its pages into private buffers:
// two readers over the same file -- or the same reader across two mining
// sessions -- paid the full table I/O again. BufferPool caches page images
// in memory, keyed by (file, page index), in the spirit of the classic
// buffer-manager design (clock/LRU frame table with pin counts; see
// SNIPPETS.md Snippet 2 for the TDengine SDiskbasedBuf variant of the same
// idea): readers PIN the frame holding their current page, hand out spans
// pointing straight into it, and UNPIN when they move on. Unpinned frames
// stay resident until the capacity budget evicts them least-recently-used,
// so a warm re-scan never touches the disk.
//
// Concurrency: one mutex guards the frame table, LRU list, and counters.
// Page loads run OUTSIDE the mutex -- a frame being filled is marked
// loading, and every other fetcher of the same page waits on a condition
// variable instead of issuing a duplicate read. That is what turns the
// double-buffered prefetch thread into a cache-warming hint: the
// prefetcher starts the load of page N+1, the consumer's later Fetch of
// the same page blocks on the in-flight load (not on the disk) and then
// pins the shared frame.
//
// Capacity is a SOFT budget: pinned frames are never evicted, so when the
// working set of simultaneously pinned pages exceeds the budget the pool
// overshoots instead of deadlocking (a capacity-1 pool still serves any
// number of concurrent readers; it just stops caching).
//
// Files are identified by stat identity (device, inode, size, mtime):
// re-registering a path whose identity changed -- e.g. a writer truncated
// and rewrote the same inode -- yields a fresh file id, so stale frames of
// the old generation can never be served for the new bytes.

#ifndef OPTRULES_STORAGE_BUFFER_POOL_H_
#define OPTRULES_STORAGE_BUFFER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace optrules::storage {

/// Default capacity when OPTRULES_BUFFER_POOL_BYTES is unset: 64 MiB.
inline constexpr size_t kDefaultBufferPoolBytes = size_t{64} << 20;

class BufferPool {
 public:
  /// Cumulative counters (monotone; read under the pool mutex).
  struct Stats {
    int64_t hits = 0;       ///< fetches served from a resident frame
    int64_t misses = 0;     ///< fetches that had to load from disk
    int64_t evictions = 0;  ///< frames dropped to stay inside the budget
  };

  /// Fills `dest` (exactly the page size passed to Fetch) with the page
  /// bytes; runs without the pool mutex held.
  using Loader = std::function<Status(uint8_t* dest)>;

  explicit BufferPool(size_t capacity_bytes);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// RAII pin on one cached page frame. The frame's bytes stay valid and
  /// immutable until the pin is released; releasing makes the frame
  /// evictable again.
  class Pin {
   public:
    Pin() = default;
    Pin(Pin&& other) noexcept;
    Pin& operator=(Pin&& other) noexcept;
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin();

    explicit operator bool() const { return frame_ != nullptr; }
    const uint8_t* data() const;
    size_t size() const;

    /// Releases the pin early (idempotent).
    void Reset();

   private:
    friend class BufferPool;
    Pin(BufferPool* pool, void* frame) : pool_(pool), frame_(frame) {}
    BufferPool* pool_ = nullptr;
    void* frame_ = nullptr;
  };

  /// Resolves `path` to a pool-wide file id. Two paths naming the same
  /// unchanged file (same device/inode/size/mtime) share one id -- and
  /// therefore share frames; a path whose identity changed since the last
  /// registration gets a fresh id.
  Result<uint64_t> RegisterFile(const std::string& path);

  /// Returns a pin on the frame holding page `page_index` of `file_id`
  /// (`page_bytes` is that page's fixed on-disk image size). On a miss the
  /// frame is filled by `loader` outside the pool mutex; concurrent
  /// fetchers of the same page wait for the in-flight load instead of
  /// re-reading. `was_hit`, when non-null, reports whether this fetch
  /// found the page resident or in flight (no disk read of its own).
  Result<Pin> Fetch(uint64_t file_id, int64_t page_index, size_t page_bytes,
                    const Loader& loader, bool* was_hit = nullptr);

  /// Cache-warming hint: loads the page into the pool (if absent) and
  /// leaves it unpinned. Load errors are swallowed -- the consumer's
  /// demand Fetch will surface them.
  void Prefetch(uint64_t file_id, int64_t page_index, size_t page_bytes,
                const Loader& loader);

  /// Drops the registration of `path` (and purges its unpinned frames),
  /// so the next RegisterFile sees a fresh generation even when the stat
  /// identity did not observably change -- file timestamps use the coarse
  /// kernel clock, so an in-process truncate-and-rewrite within one tick
  /// would otherwise serve stale frames. PagedFileWriter calls this on the
  /// default pool whenever it (re)creates or finalizes a file.
  void InvalidateFile(const std::string& path);

  size_t capacity_bytes() const { return capacity_bytes_; }
  /// Bytes currently held in frames (may exceed the budget while the
  /// pinned working set does).
  size_t bytes_used() const;
  Stats stats() const;

  /// The process-wide pool configured by OPTRULES_BUFFER_POOL_BYTES
  /// (unset -> 64 MiB; "0" -> nullptr = pooling bypassed, the reference
  /// read path). The environment is read once, on first use.
  static BufferPool* Default();

 private:
  struct FileKey {
    uint64_t dev = 0;
    uint64_t ino = 0;
    bool operator==(const FileKey&) const = default;
  };
  struct FileKeyHash {
    size_t operator()(const FileKey& k) const {
      return std::hash<uint64_t>()(k.dev * 1000003u ^ k.ino);
    }
  };
  /// Stat identity of a registered file; a mismatch on re-registration
  /// bumps the file to a fresh id (generation change).
  struct FileEntry {
    uint64_t id = 0;
    int64_t size = 0;
    int64_t mtime_ns = 0;
  };

  struct FrameKey {
    uint64_t file_id = 0;
    int64_t page_index = 0;
    bool operator==(const FrameKey&) const = default;
  };
  struct FrameKeyHash {
    size_t operator()(const FrameKey& k) const {
      return std::hash<uint64_t>()(k.file_id * 1000003u ^
                                   static_cast<uint64_t>(k.page_index));
    }
  };

  struct Frame {
    FrameKey key;
    std::vector<uint8_t> bytes;
    int pins = 0;
    bool loading = false;  ///< a fetcher is filling `bytes` off-mutex
    /// Position in lru_ when pins == 0 && !loading; invalid otherwise.
    std::list<Frame*>::iterator lru_pos;
    bool in_lru = false;
  };

  /// Evicts unpinned frames (least recently used first) while over budget.
  /// Caller holds mu_.
  void EvictLocked();
  /// Unpin path used by Pin::Reset/~Pin.
  void Release(Frame* frame);

  const size_t capacity_bytes_;

  mutable std::mutex mu_;
  std::condition_variable load_cv_;
  std::unordered_map<FrameKey, std::unique_ptr<Frame>, FrameKeyHash> frames_;
  /// Unpinned, fully loaded frames; front = least recently used.
  std::list<Frame*> lru_;
  size_t bytes_used_ = 0;
  Stats stats_;

  std::unordered_map<FileKey, FileEntry, FileKeyHash> files_;
  uint64_t next_file_id_ = 1;
};

}  // namespace optrules::storage

#endif  // OPTRULES_STORAGE_BUFFER_POOL_H_
