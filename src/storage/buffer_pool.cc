#include "storage/buffer_pool.h"

#include <sys/stat.h>

#include <cstdlib>
#include <utility>

#include "common/env.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace optrules::storage {

namespace {

/// Registry instruments, resolved once. The pool keeps its own Stats
/// struct for the public accessor; the registry mirrors it so the serve
/// daemon and benches export the same numbers.
struct PoolMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* evictions;
  obs::Histogram* load_seconds;

  static const PoolMetrics& Get() {
    static const PoolMetrics metrics = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      return PoolMetrics{reg.GetCounter("bufferpool.hits"),
                         reg.GetCounter("bufferpool.misses"),
                         reg.GetCounter("bufferpool.evictions"),
                         reg.GetHistogram("bufferpool.load_seconds")};
    }();
    return metrics;
  }
};

}  // namespace

// ------------------------------------------------------------------ Pin ----

BufferPool::Pin::Pin(Pin&& other) noexcept
    : pool_(other.pool_), frame_(other.frame_) {
  other.pool_ = nullptr;
  other.frame_ = nullptr;
}

BufferPool::Pin& BufferPool::Pin::operator=(Pin&& other) noexcept {
  if (this != &other) {
    Reset();
    pool_ = other.pool_;
    frame_ = other.frame_;
    other.pool_ = nullptr;
    other.frame_ = nullptr;
  }
  return *this;
}

BufferPool::Pin::~Pin() { Reset(); }

void BufferPool::Pin::Reset() {
  if (frame_ != nullptr) {
    pool_->Release(static_cast<Frame*>(frame_));
    pool_ = nullptr;
    frame_ = nullptr;
  }
}

const uint8_t* BufferPool::Pin::data() const {
  return static_cast<const Frame*>(frame_)->bytes.data();
}

size_t BufferPool::Pin::size() const {
  return static_cast<const Frame*>(frame_)->bytes.size();
}

// ----------------------------------------------------------------- pool ----

BufferPool::BufferPool(size_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {}

BufferPool::~BufferPool() {
  // All pins must be released before the pool dies (readers are destroyed
  // before the sources that own the pool reference).
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, frame] : frames_) {
    OPTRULES_CHECK(frame->pins == 0 && !frame->loading);
  }
}

Result<uint64_t> BufferPool::RegisterFile(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IoError("buffer pool cannot stat file: " + path);
  }
  const int64_t mtime_ns =
      static_cast<int64_t>(st.st_mtim.tv_sec) * 1000000000 +
      static_cast<int64_t>(st.st_mtim.tv_nsec);
  const FileKey key{static_cast<uint64_t>(st.st_dev),
                    static_cast<uint64_t>(st.st_ino)};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(key);
  if (it != files_.end() && it->second.size == st.st_size &&
      it->second.mtime_ns == mtime_ns) {
    return it->second.id;
  }
  // New file, or the identity changed since the last registration: hand
  // out a fresh id so frames of the previous generation are unreachable
  // (they age out of the LRU on their own).
  const FileEntry entry{next_file_id_++, static_cast<int64_t>(st.st_size),
                        mtime_ns};
  files_[key] = entry;
  return entry.id;
}

void BufferPool::InvalidateFile(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return;
  const FileKey key{static_cast<uint64_t>(st.st_dev),
                    static_cast<uint64_t>(st.st_ino)};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(key);
  if (it == files_.end()) return;
  const uint64_t stale_id = it->second.id;
  files_.erase(it);
  // Purge the stale generation's unpinned frames eagerly; pinned ones (a
  // reader still mid-scan over the old bytes) are left to their readers.
  for (auto frame_it = frames_.begin(); frame_it != frames_.end();) {
    Frame* frame = frame_it->second.get();
    if (frame->key.file_id == stale_id && frame->pins == 0 &&
        !frame->loading) {
      lru_.erase(frame->lru_pos);
      bytes_used_ -= frame->bytes.size();
      frame_it = frames_.erase(frame_it);
    } else {
      ++frame_it;
    }
  }
}

Result<BufferPool::Pin> BufferPool::Fetch(uint64_t file_id,
                                          int64_t page_index,
                                          size_t page_bytes,
                                          const Loader& loader,
                                          bool* was_hit) {
  const FrameKey key{file_id, page_index};
  std::unique_lock<std::mutex> lock(mu_);
  bool waited = false;
  for (;;) {
    auto it = frames_.find(key);
    if (it == frames_.end()) break;
    Frame* frame = it->second.get();
    if (frame->loading) {
      // Another fetcher (or the prefetch hint) is filling this frame; wait
      // for that load instead of issuing a duplicate read. The wait is
      // charged as a miss: the disk read is happening NOW, on behalf of
      // this fetch -- only an already-loaded frame is a hit.
      waited = true;
      load_cv_.wait(lock);
      continue;  // the frame may have been dropped on load failure
    }
    OPTRULES_CHECK(frame->bytes.size() == page_bytes);
    if (frame->in_lru) {
      lru_.erase(frame->lru_pos);
      frame->in_lru = false;
    }
    ++frame->pins;
    if (waited) {
      ++stats_.misses;
      PoolMetrics::Get().misses->Add();
    } else {
      ++stats_.hits;
      PoolMetrics::Get().hits->Add();
    }
    if (was_hit != nullptr) *was_hit = !waited;
    return Pin(this, frame);
  }

  // Miss: install a loading frame (pinned by this fetch) and fill it with
  // the mutex dropped, so concurrent fetches of other pages proceed and
  // concurrent fetches of THIS page wait on load_cv_.
  ++stats_.misses;
  PoolMetrics::Get().misses->Add();
  if (was_hit != nullptr) *was_hit = false;
  auto owned = std::make_unique<Frame>();
  Frame* frame = owned.get();
  frame->key = key;
  frame->bytes.resize(page_bytes);
  frame->pins = 1;
  frame->loading = true;
  bytes_used_ += page_bytes;
  frames_.emplace(key, std::move(owned));
  EvictLocked();

  lock.unlock();
  WallTimer load_timer;
  const Status loaded = loader(frame->bytes.data());
  PoolMetrics::Get().load_seconds->Observe(load_timer.ElapsedSeconds());
  lock.lock();

  frame->loading = false;
  if (!loaded.ok()) {
    bytes_used_ -= frame->bytes.size();
    frames_.erase(key);
    load_cv_.notify_all();
    return loaded;
  }
  load_cv_.notify_all();
  return Pin(this, frame);
}

void BufferPool::Prefetch(uint64_t file_id, int64_t page_index,
                          size_t page_bytes, const Loader& loader) {
  const FrameKey key{file_id, page_index};
  std::unique_lock<std::mutex> lock(mu_);
  if (frames_.find(key) != frames_.end()) return;  // resident or in flight
  // Hints are invisible to the hit/miss counters: they measure what the
  // DEMAND fetches experienced, so a cold double-buffered scan does not
  // masquerade as cache-friendly just because its own prefetcher primed
  // every page.
  auto owned = std::make_unique<Frame>();
  Frame* frame = owned.get();
  frame->key = key;
  frame->bytes.resize(page_bytes);
  frame->pins = 1;
  frame->loading = true;
  bytes_used_ += page_bytes;
  frames_.emplace(key, std::move(owned));
  EvictLocked();

  lock.unlock();
  const Status loaded = loader(frame->bytes.data());
  lock.lock();

  frame->loading = false;
  frame->pins = 0;
  if (!loaded.ok()) {
    // Swallow: the consumer's own Fetch will re-attempt and surface it.
    bytes_used_ -= frame->bytes.size();
    frames_.erase(key);
  } else {
    frame->lru_pos = lru_.insert(lru_.end(), frame);
    frame->in_lru = true;
    EvictLocked();
  }
  load_cv_.notify_all();
}

void BufferPool::Release(Frame* frame) {
  std::lock_guard<std::mutex> lock(mu_);
  OPTRULES_CHECK(frame->pins > 0);
  --frame->pins;
  if (frame->pins == 0) {
    frame->lru_pos = lru_.insert(lru_.end(), frame);
    frame->in_lru = true;
    EvictLocked();
  }
}

void BufferPool::EvictLocked() {
  while (bytes_used_ > capacity_bytes_ && !lru_.empty()) {
    Frame* victim = lru_.front();
    lru_.pop_front();
    bytes_used_ -= victim->bytes.size();
    ++stats_.evictions;
    PoolMetrics::Get().evictions->Add();
    frames_.erase(victim->key);
  }
}

size_t BufferPool::bytes_used() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_used_;
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

BufferPool* BufferPool::Default() {
  static BufferPool* pool = []() -> BufferPool* {
    // Strict parse: "64abc" and "-1" are rejected (warning + 64 MiB
    // default), never half-parsed into a bogus budget. "0" = bypass.
    const size_t bytes = static_cast<size_t>(env::ReadEnvNonNegativeInt(
        "OPTRULES_BUFFER_POOL_BYTES", kDefaultBufferPoolBytes));
    if (bytes == 0) return nullptr;
    static BufferPool instance(bytes);
    return &instance;
  }();
  return pool;
}

}  // namespace optrules::storage
