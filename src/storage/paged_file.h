// Fixed-width binary table store, row-major (v1) or columnar (v2).
//
// This is the out-of-core substrate: the paper's motivating setting is a
// database much larger than main memory, where sorting every numeric
// attribute is prohibitively expensive and a single sequential scan is the
// only affordable full-table access. PagedFile stores tables behind a small
// header in one of two on-disk formats, and the readers scan them through
// bounded buffers.
//
// v1 (row-major, 24-byte header):
//   [magic u32][version=1][num_numeric u32][num_boolean u32][num_rows u64]
//   row 0, row 1, ... (Schema::RowBytes() bytes each: doubles then booleans)
//
// v2 (columnar pages, 32-byte header):
//   [magic u32][version=2][num_numeric u32][num_boolean u32][num_rows u64]
//   [rows_per_page u32][reserved u32]
//   page 0, page 1, ... (page_stride() bytes each, fixed stride)
//
// Each v2 page holds rows_per_page rows split into per-column contiguous
// runs, so a scan can hand out column slices with zero transpose work:
//
//   [column-offset directory: (nn + nb) u32 entries, padded to 8 bytes]
//   [numeric column 0 run: rows_per_page doubles]
//   ...
//   [numeric column nn-1 run]
//   [boolean column 0 run: rows_per_page bytes]
//   ...
//   [boolean column nb-1 run]
//   [zero pad to 8-byte stride]
//
// The directory is redundant (offsets are derivable from the header) and
// exists as a per-page integrity check; readers validate it. The last page
// may hold fewer than rows_per_page rows; its unused tail bytes are written
// as zero and readers assert that, so stale buffer content can never leak
// into a file. Because the directory is padded to 8 bytes and pages start
// at 8-byte multiples from an 8-byte-aligned header end, every numeric run
// is 8-byte aligned inside a malloc'd page buffer.

#ifndef OPTRULES_STORAGE_PAGED_FILE_H_
#define OPTRULES_STORAGE_PAGED_FILE_H_

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/relation.h"
#include "storage/schema.h"

namespace optrules::storage {

/// Size of the v1 PagedFile header in bytes.
inline constexpr size_t kPagedFileHeaderBytes = 24;
/// Size of the v2 (columnar) PagedFile header in bytes.
inline constexpr size_t kPagedFileV2HeaderBytes = 32;

/// On-disk layout of a PagedFile; the numeric value is the header version.
enum class PagedFileFormat : uint32_t {
  kRowMajorV1 = 1,  ///< rows serialized back to back (legacy; still written
                    ///< where a consumer needs fixed-width whole-row records,
                    ///< e.g. as ExternalSort input)
  kColumnarV2 = 2,  ///< per-column runs inside fixed-stride pages (default)
};

/// Options for PagedFileWriter::Create.
struct PagedFileWriterOptions {
  PagedFileFormat format = PagedFileFormat::kColumnarV2;
  /// Rows per v2 page; 0 = auto-size so a page's column payload is on the
  /// order of 1 MiB (clamped to [256, 65536]). Ignored for v1.
  uint32_t rows_per_page = 0;
  /// Write-buffer size for v1 (v2 buffers exactly one page instead).
  size_t buffer_bytes = 1 << 20;
  /// v2 only: accumulate per-page per-column min/max (NaN-skipped) while
  /// writing and append the zone-map trailer readers prune scans with.
  /// Flagged in the header's reserved word; files written without zone
  /// maps (and every v1 file) read everywhere, they just never prune.
  bool zone_maps = true;
};

/// Buffered sequential writer of a PagedFile.
class PagedFileWriter {
 public:
  /// Creates/truncates `path` for a table with the given attribute counts.
  static Result<PagedFileWriter> Create(const std::string& path,
                                        int num_numeric, int num_boolean,
                                        const PagedFileWriterOptions& options);

  /// Back-compat convenience: default options (columnar v2) with an
  /// explicit v1-style buffer size.
  static Result<PagedFileWriter> Create(const std::string& path,
                                        int num_numeric, int num_boolean,
                                        size_t buffer_bytes = 1 << 20);

  PagedFileWriter(PagedFileWriter&& other) noexcept;
  PagedFileWriter& operator=(PagedFileWriter&& other) noexcept;
  PagedFileWriter(const PagedFileWriter&) = delete;
  PagedFileWriter& operator=(const PagedFileWriter&) = delete;
  ~PagedFileWriter();

  /// Appends one row.
  Status AppendRow(std::span<const double> numeric_values,
                   std::span<const uint8_t> boolean_values);

  /// Appends one row already serialized in the v1 row layout (doubles then
  /// boolean bytes). Works for both formats: the v2 writer scatters the
  /// fields into its page's column runs, so producers that hash or route on
  /// serialized row bytes (the partitioner) need no format awareness.
  Status AppendRawRow(const uint8_t* row);

  /// Flushes (zero-padding a partial v2 page), patches the row count into
  /// the header, and closes the file. Must be called exactly once before
  /// destruction for a valid file.
  Status Close();

  /// Rows appended so far.
  int64_t NumRows() const { return num_rows_; }

 private:
  PagedFileWriter() = default;
  Status FlushBuffer();
  /// v1: claims the next row_bytes_ slot in the write buffer (flushing
  /// first if full) and returns its write pointer; advances the row count.
  Result<uint8_t*> ReserveRow();
  /// v2: writes the staged page (already zero-padded) and clears the
  /// payload region for the next page.
  Status FlushPage();
  /// v2: scatters one row into the staged page's column runs.
  Status AppendRowV2(const double* numeric_values,
                     const uint8_t* boolean_values);
  /// v2 zone maps: resets the staged page's per-column accumulators to the
  /// empty sentinels (+inf/-inf, 1/0).
  void ResetZoneAccumulators();
  /// v2 zone maps: appends the staged page's accumulated entry to the
  /// trailer image and resets the accumulators.
  void AppendZoneEntry();

  std::FILE* file_ = nullptr;
  std::string path_;
  PagedFileFormat format_ = PagedFileFormat::kRowMajorV1;
  int num_numeric_ = 0;
  int num_boolean_ = 0;
  size_t row_bytes_ = 0;
  int64_t num_rows_ = 0;
  std::vector<uint8_t> buffer_;  ///< v1: row buffer; v2: one staged page
  size_t buffer_used_ = 0;       ///< v1 only
  // v2 page geometry (all zero for v1).
  uint32_t rows_per_page_ = 0;
  size_t directory_bytes_ = 0;
  size_t page_stride_ = 0;
  uint32_t row_in_page_ = 0;
  // v2 zone maps: per-column accumulators of the page being staged, plus
  // the growing trailer image appended to the file in Close().
  bool zone_maps_ = false;
  std::vector<double> zone_min_;
  std::vector<double> zone_max_;
  std::vector<uint8_t> zone_bool_min_;
  std::vector<uint8_t> zone_bool_max_;
  std::vector<uint8_t> zone_trailer_;
};

/// Metadata of an open PagedFile, with the v2 page geometry derived from
/// the header fields (the same formulas the writer used).
struct PagedFileInfo {
  int num_numeric = 0;
  int num_boolean = 0;
  int64_t num_rows = 0;
  size_t row_bytes = 0;  ///< v1 row width (also the logical row width of v2)
  uint32_t format_version = 1;
  uint32_t rows_per_page = 0;  ///< v2 only; 0 for v1
  size_t header_bytes = kPagedFileHeaderBytes;
  /// v2 only: the file carries a zone-map trailer after the last page
  /// (bit 0 of the header's reserved word).
  bool has_zone_maps = false;

  /// v2 geometry. All require format_version == 2.
  size_t directory_bytes() const;
  /// Byte offset of numeric column `c`'s run inside a page.
  size_t numeric_run_offset(int c) const;
  /// Byte offset of boolean column `b`'s run inside a page.
  size_t boolean_run_offset(int b) const;
  /// Fixed on-disk size of every page (8-byte multiple).
  size_t page_stride() const;
  /// Number of pages covering num_rows.
  int64_t num_pages() const;
  /// Rows actually stored in page `page` (only the last may be partial).
  int64_t rows_in_page(int64_t page) const;
  /// Byte offset of the zone-map trailer (just past the last page).
  int64_t zone_map_offset() const;
  /// On-disk bytes of one page's zone-map entry (nn min/max double pairs
  /// followed by nb min/max byte pairs, packed).
  size_t zone_map_entry_bytes() const;
};

/// In-memory zone-map index of one v2 file: per page and per column the
/// min/max over the stored values, with NaNs skipped. A page whose numeric
/// column saw only NaNs carries the empty sentinel (min = +inf > max =
/// -inf); Boolean min/max are 0/1 bytes, so max == 0 means "no true row in
/// this page". Scans prune pages with these, so the index is validated
/// structurally at load time (like the per-page offset directory) and can
/// be cross-checked against page content with ValidateZoneMapEntry.
struct ZoneMapIndex {
  int num_numeric = 0;
  int num_boolean = 0;
  int64_t num_pages = 0;
  /// [page * num_numeric + c]
  std::vector<double> numeric_min;
  std::vector<double> numeric_max;
  /// [page * num_boolean + b]
  std::vector<uint8_t> boolean_min;
  std::vector<uint8_t> boolean_max;

  double NumericMin(int64_t page, int c) const {
    return numeric_min[static_cast<size_t>(page * num_numeric + c)];
  }
  double NumericMax(int64_t page, int c) const {
    return numeric_max[static_cast<size_t>(page * num_numeric + c)];
  }
  uint8_t BooleanMin(int64_t page, int b) const {
    return boolean_min[static_cast<size_t>(page * num_boolean + b)];
  }
  uint8_t BooleanMax(int64_t page, int b) const {
    return boolean_max[static_cast<size_t>(page * num_boolean + b)];
  }
};

/// Loads and validates the zone-map trailer of `path` (info must come from
/// ReadPagedFileInfo on the same file and have has_zone_maps set). Fails
/// with Corruption on a bad trailer magic, a trailer whose size disagrees
/// with the page count, NaN bounds, inverted non-sentinel bounds, or
/// non-0/1 Boolean bounds.
Result<ZoneMapIndex> ReadZoneMapIndex(const std::string& path,
                                      const PagedFileInfo& info);

/// Deep integrity check: recomputes page `page_index`'s zone-map entry
/// from the page image and compares it bit-exactly against the index.
Status ValidateZoneMapEntry(const PagedFileInfo& info,
                            const ZoneMapIndex& zones, int64_t page_index,
                            std::span<const uint8_t> page);

/// Validates one v2 page image against the derived geometry: the stored
/// column-offset directory must match, and on a partial (last) page every
/// byte past the stored rows must be zero -- the writer's stale-byte
/// guarantee. `page.size()` must equal info.page_stride().
Status ValidateV2Page(const PagedFileInfo& info, int64_t page_index,
                      std::span<const uint8_t> page);

/// Reads and validates the header of `path` (either format version).
Result<PagedFileInfo> ReadPagedFileInfo(const std::string& path);

/// Writes an entire in-memory relation to `path` in PagedFile format.
Status WriteRelationToFile(const Relation& relation, const std::string& path);
Status WriteRelationToFile(const Relation& relation, const std::string& path,
                           const PagedFileWriterOptions& options);

/// Loads an entire PagedFile (either format) into memory. `schema` must
/// match the stored attribute counts; pass Schema::Synthetic(...) when
/// names don't matter.
Result<Relation> ReadRelationFromFile(const std::string& path,
                                      const Schema& schema);

}  // namespace optrules::storage

#endif  // OPTRULES_STORAGE_PAGED_FILE_H_
