// Fixed-width binary row store.
//
// This is the out-of-core substrate: the paper's motivating setting is a
// database much larger than main memory, where sorting every numeric
// attribute is prohibitively expensive and a single sequential scan is the
// only affordable full-table access. PagedFile stores rows in the Schema
// row layout (doubles then boolean bytes) behind a small header, and the
// reader scans it through a bounded buffer.
//
// Layout:
//   [magic u32][version u32][num_numeric u32][num_boolean u32][num_rows u64]
//   row 0, row 1, ... (Schema::RowBytes() bytes each)

#ifndef OPTRULES_STORAGE_PAGED_FILE_H_
#define OPTRULES_STORAGE_PAGED_FILE_H_

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/relation.h"
#include "storage/schema.h"

namespace optrules::storage {

/// Size of the PagedFile header in bytes.
inline constexpr size_t kPagedFileHeaderBytes = 24;

/// Buffered sequential writer of a PagedFile.
class PagedFileWriter {
 public:
  /// Creates/truncates `path` for a table with the given attribute counts.
  static Result<PagedFileWriter> Create(const std::string& path,
                                        int num_numeric, int num_boolean,
                                        size_t buffer_bytes = 1 << 20);

  PagedFileWriter(PagedFileWriter&& other) noexcept;
  PagedFileWriter& operator=(PagedFileWriter&& other) noexcept;
  PagedFileWriter(const PagedFileWriter&) = delete;
  PagedFileWriter& operator=(const PagedFileWriter&) = delete;
  ~PagedFileWriter();

  /// Appends one row.
  Status AppendRow(std::span<const double> numeric_values,
                   std::span<const uint8_t> boolean_values);

  /// Appends one row already serialized in the file layout.
  Status AppendRawRow(const uint8_t* row);

  /// Flushes, patches the row count into the header, and closes the file.
  /// Must be called exactly once before destruction for a valid file.
  Status Close();

  /// Rows appended so far.
  int64_t NumRows() const { return num_rows_; }

 private:
  PagedFileWriter() = default;
  Status FlushBuffer();
  /// Claims the next row_bytes_ slot in the write buffer (flushing first
  /// if full) and returns its write pointer; advances the row count.
  Result<uint8_t*> ReserveRow();

  std::FILE* file_ = nullptr;
  std::string path_;
  int num_numeric_ = 0;
  int num_boolean_ = 0;
  size_t row_bytes_ = 0;
  int64_t num_rows_ = 0;
  std::vector<uint8_t> buffer_;
  size_t buffer_used_ = 0;
};

/// Metadata of an open PagedFile.
struct PagedFileInfo {
  int num_numeric = 0;
  int num_boolean = 0;
  int64_t num_rows = 0;
  size_t row_bytes = 0;
};

/// Reads and validates the header of `path`.
Result<PagedFileInfo> ReadPagedFileInfo(const std::string& path);

/// Writes an entire in-memory relation to `path` in PagedFile format.
Status WriteRelationToFile(const Relation& relation, const std::string& path);

/// Loads an entire PagedFile into memory. `schema` must match the stored
/// attribute counts; pass Schema::Synthetic(...) when names don't matter.
Result<Relation> ReadRelationFromFile(const std::string& path,
                                      const Schema& schema);

}  // namespace optrules::storage

#endif  // OPTRULES_STORAGE_PAGED_FILE_H_
