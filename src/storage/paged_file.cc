#include "storage/paged_file.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "storage/buffer_pool.h"

namespace optrules::storage {

namespace {

constexpr uint32_t kMagic = 0x4f505452;      // "OPTR"
constexpr uint32_t kZoneMapMagic = 0x4f50545a;  // "OPTZ"
/// Zone-map trailer prefix: magic + 4 pad bytes (keeps the double pairs
/// 8-aligned relative to the trailer start).
constexpr size_t kZoneMapTrailerPrefixBytes = 8;
/// Bit 0 of the v2 header's reserved word: a zone-map trailer follows the
/// last page.
constexpr uint32_t kHeaderFlagZoneMaps = 1;

void PutU32(uint8_t* dst, uint32_t v) { std::memcpy(dst, &v, 4); }
void PutU64(uint8_t* dst, uint64_t v) { std::memcpy(dst, &v, 8); }
uint32_t GetU32(const uint8_t* src) {
  uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}
uint64_t GetU64(const uint8_t* src) {
  uint64_t v;
  std::memcpy(&v, src, 8);
  return v;
}

size_t RoundUp8(size_t n) { return (n + 7) & ~size_t{7}; }

/// Auto page size: the largest power-of-two row count whose column payload
/// stays around 1 MiB, clamped to [256, 65536]. Power-of-two keeps the
/// row -> (page, offset) split cheap and the clamp bounds both per-page
/// overhead (wide schemas) and page count (narrow schemas).
uint32_t AutoRowsPerPage(size_t row_bytes) {
  constexpr size_t kTargetPayload = size_t{1} << 20;
  uint32_t rows = 256;
  while (rows < 65536 &&
         size_t{rows} * 2 * row_bytes <= kTargetPayload) {
    rows *= 2;
  }
  return rows;
}

/// Fills a v2 page's column-offset directory (identical on every page).
void WriteDirectory(const PagedFileInfo& geom, uint8_t* page) {
  for (int c = 0; c < geom.num_numeric; ++c) {
    PutU32(page + static_cast<size_t>(c) * 4,
           static_cast<uint32_t>(geom.numeric_run_offset(c)));
  }
  for (int b = 0; b < geom.num_boolean; ++b) {
    PutU32(page + (static_cast<size_t>(geom.num_numeric) +
                   static_cast<size_t>(b)) *
                      4,
           static_cast<uint32_t>(geom.boolean_run_offset(b)));
  }
}

/// Geometry snapshot used by the writer (num_rows irrelevant there).
PagedFileInfo MakeV2Geometry(int num_numeric, int num_boolean,
                             uint32_t rows_per_page) {
  PagedFileInfo geom;
  geom.num_numeric = num_numeric;
  geom.num_boolean = num_boolean;
  geom.row_bytes = static_cast<size_t>(num_numeric) * sizeof(double) +
                   static_cast<size_t>(num_boolean);
  geom.format_version = 2;
  geom.rows_per_page = rows_per_page;
  geom.header_bytes = kPagedFileV2HeaderBytes;
  return geom;
}

}  // namespace

size_t PagedFileInfo::directory_bytes() const {
  return RoundUp8(
      (static_cast<size_t>(num_numeric) + static_cast<size_t>(num_boolean)) *
      4);
}

size_t PagedFileInfo::numeric_run_offset(int c) const {
  return directory_bytes() +
         static_cast<size_t>(c) * rows_per_page * sizeof(double);
}

size_t PagedFileInfo::boolean_run_offset(int b) const {
  return directory_bytes() +
         static_cast<size_t>(num_numeric) * rows_per_page * sizeof(double) +
         static_cast<size_t>(b) * rows_per_page;
}

size_t PagedFileInfo::page_stride() const {
  return RoundUp8(boolean_run_offset(num_boolean));
}

int64_t PagedFileInfo::num_pages() const {
  if (rows_per_page == 0) return 0;
  return (num_rows + rows_per_page - 1) /
         static_cast<int64_t>(rows_per_page);
}

int64_t PagedFileInfo::rows_in_page(int64_t page) const {
  const int64_t begin = page * static_cast<int64_t>(rows_per_page);
  return std::min<int64_t>(rows_per_page, num_rows - begin);
}

int64_t PagedFileInfo::zone_map_offset() const {
  return static_cast<int64_t>(header_bytes) +
         num_pages() * static_cast<int64_t>(page_stride());
}

size_t PagedFileInfo::zone_map_entry_bytes() const {
  return static_cast<size_t>(num_numeric) * 2 * sizeof(double) +
         static_cast<size_t>(num_boolean) * 2;
}

Status ValidateV2Page(const PagedFileInfo& info, int64_t page_index,
                      std::span<const uint8_t> page) {
  OPTRULES_CHECK(info.format_version == 2);
  OPTRULES_CHECK(page.size() == info.page_stride());
  for (int c = 0; c < info.num_numeric; ++c) {
    if (GetU32(page.data() + static_cast<size_t>(c) * 4) !=
        info.numeric_run_offset(c)) {
      return Status::Corruption("page directory mismatch (numeric column " +
                                std::to_string(c) + ", page " +
                                std::to_string(page_index) + ")");
    }
  }
  for (int b = 0; b < info.num_boolean; ++b) {
    if (GetU32(page.data() + (static_cast<size_t>(info.num_numeric) +
                              static_cast<size_t>(b)) *
                                 4) != info.boolean_run_offset(b)) {
      return Status::Corruption("page directory mismatch (boolean column " +
                                std::to_string(b) + ", page " +
                                std::to_string(page_index) + ")");
    }
  }
  const int64_t rows = info.rows_in_page(page_index);
  if (rows < 0 || rows > static_cast<int64_t>(info.rows_per_page)) {
    return Status::Corruption("page " + std::to_string(page_index) +
                              " out of range");
  }
  if (rows == static_cast<int64_t>(info.rows_per_page)) return Status::Ok();
  // Partial last page: the unused tail of every column run (and the final
  // stride pad) must be zero -- the writer's stale-byte guarantee.
  auto all_zero = [&page](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (page[i] != 0) return false;
    }
    return true;
  };
  const auto used = static_cast<size_t>(rows);
  for (int c = 0; c < info.num_numeric; ++c) {
    const size_t run = info.numeric_run_offset(c);
    if (!all_zero(run + used * sizeof(double),
                  run + info.rows_per_page * sizeof(double))) {
      return Status::Corruption("stale bytes after numeric column " +
                                std::to_string(c) + " in partial page " +
                                std::to_string(page_index));
    }
  }
  for (int b = 0; b < info.num_boolean; ++b) {
    const size_t run = info.boolean_run_offset(b);
    if (!all_zero(run + used, run + info.rows_per_page)) {
      return Status::Corruption("stale bytes after boolean column " +
                                std::to_string(b) + " in partial page " +
                                std::to_string(page_index));
    }
  }
  if (!all_zero(info.boolean_run_offset(info.num_boolean),
                info.page_stride())) {
    return Status::Corruption("stale bytes in stride pad of page " +
                              std::to_string(page_index));
  }
  return Status::Ok();
}

Result<PagedFileWriter> PagedFileWriter::Create(
    const std::string& path, int num_numeric, int num_boolean,
    const PagedFileWriterOptions& options) {
  if (num_numeric < 0 || num_boolean < 0 || num_numeric + num_boolean == 0) {
    return Status::InvalidArgument("invalid attribute counts");
  }
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot create file: " + path);
  }
  // fopen("wb") truncates in place (same inode), so drop any frames the
  // default pool cached for a previous file at this path.
  if (BufferPool* pool = BufferPool::Default(); pool != nullptr) {
    pool->InvalidateFile(path);
  }
  PagedFileWriter writer;
  writer.file_ = file;
  writer.path_ = path;
  writer.format_ = options.format;
  writer.num_numeric_ = num_numeric;
  writer.num_boolean_ = num_boolean;
  writer.row_bytes_ = static_cast<size_t>(num_numeric) * sizeof(double) +
                      static_cast<size_t>(num_boolean);

  const bool v2 = options.format == PagedFileFormat::kColumnarV2;
  const size_t header_bytes =
      v2 ? kPagedFileV2HeaderBytes : kPagedFileHeaderBytes;
  uint8_t header[kPagedFileV2HeaderBytes] = {0};
  PutU32(header, kMagic);
  PutU32(header + 4, static_cast<uint32_t>(options.format));
  PutU32(header + 8, static_cast<uint32_t>(num_numeric));
  PutU32(header + 12, static_cast<uint32_t>(num_boolean));
  PutU64(header + 16, 0);  // row count patched in Close().
  if (v2) {
    writer.rows_per_page_ = options.rows_per_page != 0
                                ? options.rows_per_page
                                : AutoRowsPerPage(writer.row_bytes_);
    const PagedFileInfo geom =
        MakeV2Geometry(num_numeric, num_boolean, writer.rows_per_page_);
    writer.directory_bytes_ = geom.directory_bytes();
    writer.page_stride_ = geom.page_stride();
    writer.buffer_.assign(writer.page_stride_, 0);
    WriteDirectory(geom, writer.buffer_.data());
    PutU32(header + 24, writer.rows_per_page_);
    writer.zone_maps_ = options.zone_maps;
    PutU32(header + 28, writer.zone_maps_ ? kHeaderFlagZoneMaps : 0);
    if (writer.zone_maps_) {
      writer.ResetZoneAccumulators();
      writer.zone_trailer_.assign(kZoneMapTrailerPrefixBytes, 0);
      PutU32(writer.zone_trailer_.data(), kZoneMapMagic);
    }
  } else {
    writer.buffer_.resize(std::max(options.buffer_bytes, writer.row_bytes_));
  }
  if (std::fwrite(header, 1, header_bytes, file) != header_bytes) {
    std::fclose(file);
    return Status::IoError("cannot write header: " + path);
  }
  return writer;
}

Result<PagedFileWriter> PagedFileWriter::Create(const std::string& path,
                                                int num_numeric,
                                                int num_boolean,
                                                size_t buffer_bytes) {
  PagedFileWriterOptions options;
  options.buffer_bytes = buffer_bytes;
  return Create(path, num_numeric, num_boolean, options);
}

PagedFileWriter::PagedFileWriter(PagedFileWriter&& other) noexcept {
  *this = std::move(other);
}

PagedFileWriter& PagedFileWriter::operator=(
    PagedFileWriter&& other) noexcept {
  if (this == &other) return *this;
  if (file_ != nullptr) std::fclose(file_);
  file_ = other.file_;
  other.file_ = nullptr;
  path_ = std::move(other.path_);
  format_ = other.format_;
  num_numeric_ = other.num_numeric_;
  num_boolean_ = other.num_boolean_;
  row_bytes_ = other.row_bytes_;
  num_rows_ = other.num_rows_;
  buffer_ = std::move(other.buffer_);
  buffer_used_ = other.buffer_used_;
  rows_per_page_ = other.rows_per_page_;
  directory_bytes_ = other.directory_bytes_;
  page_stride_ = other.page_stride_;
  row_in_page_ = other.row_in_page_;
  zone_maps_ = other.zone_maps_;
  zone_min_ = std::move(other.zone_min_);
  zone_max_ = std::move(other.zone_max_);
  zone_bool_min_ = std::move(other.zone_bool_min_);
  zone_bool_max_ = std::move(other.zone_bool_max_);
  zone_trailer_ = std::move(other.zone_trailer_);
  return *this;
}

void PagedFileWriter::ResetZoneAccumulators() {
  zone_min_.assign(static_cast<size_t>(num_numeric_),
                   std::numeric_limits<double>::infinity());
  zone_max_.assign(static_cast<size_t>(num_numeric_),
                   -std::numeric_limits<double>::infinity());
  zone_bool_min_.assign(static_cast<size_t>(num_boolean_), 1);
  zone_bool_max_.assign(static_cast<size_t>(num_boolean_), 0);
}

void PagedFileWriter::AppendZoneEntry() {
  const size_t base = zone_trailer_.size();
  zone_trailer_.resize(base + static_cast<size_t>(num_numeric_) * 2 *
                                  sizeof(double) +
                       static_cast<size_t>(num_boolean_) * 2);
  uint8_t* out = zone_trailer_.data() + base;
  for (int c = 0; c < num_numeric_; ++c) {
    std::memcpy(out, &zone_min_[static_cast<size_t>(c)], sizeof(double));
    out += sizeof(double);
    std::memcpy(out, &zone_max_[static_cast<size_t>(c)], sizeof(double));
    out += sizeof(double);
  }
  for (int b = 0; b < num_boolean_; ++b) {
    *out++ = zone_bool_min_[static_cast<size_t>(b)];
    *out++ = zone_bool_max_[static_cast<size_t>(b)];
  }
  ResetZoneAccumulators();
}

PagedFileWriter::~PagedFileWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status PagedFileWriter::FlushBuffer() {
  if (buffer_used_ == 0) return Status::Ok();
  if (std::fwrite(buffer_.data(), 1, buffer_used_, file_) != buffer_used_) {
    return Status::IoError("write failed: " + path_);
  }
  buffer_used_ = 0;
  return Status::Ok();
}

Result<uint8_t*> PagedFileWriter::ReserveRow() {
  OPTRULES_CHECK(file_ != nullptr);
  if (buffer_used_ + row_bytes_ > buffer_.size()) {
    OPTRULES_RETURN_IF_ERROR(FlushBuffer());
  }
  uint8_t* row = buffer_.data() + buffer_used_;
  buffer_used_ += row_bytes_;
  ++num_rows_;
  return row;
}

Status PagedFileWriter::FlushPage() {
  if (std::fwrite(buffer_.data(), 1, page_stride_, file_) != page_stride_) {
    return Status::IoError("write failed: " + path_);
  }
  if (zone_maps_) AppendZoneEntry();
  // Clear the payload for the next page (the directory is identical on
  // every page and stays in place), so a final partial page is zero-padded
  // by construction rather than by a separate pass.
  std::memset(buffer_.data() + directory_bytes_, 0,
              page_stride_ - directory_bytes_);
  row_in_page_ = 0;
  return Status::Ok();
}

Status PagedFileWriter::AppendRowV2(const double* numeric_values,
                                    const uint8_t* boolean_values) {
  OPTRULES_CHECK(file_ != nullptr);
  uint8_t* page = buffer_.data();
  const size_t r = row_in_page_;
  size_t offset = directory_bytes_ + r * sizeof(double);
  for (int c = 0; c < num_numeric_; ++c) {
    std::memcpy(page + offset, numeric_values + c, sizeof(double));
    offset += size_t{rows_per_page_} * sizeof(double);
  }
  offset = directory_bytes_ +
           static_cast<size_t>(num_numeric_) * rows_per_page_ *
               sizeof(double) +
           r;
  for (int b = 0; b < num_boolean_; ++b) {
    page[offset] = boolean_values[b];
    offset += rows_per_page_;
  }
  if (zone_maps_) {
    for (int c = 0; c < num_numeric_; ++c) {
      const double v = numeric_values[c];
      if (!std::isnan(v)) {
        const auto i = static_cast<size_t>(c);
        if (v < zone_min_[i]) zone_min_[i] = v;
        if (v > zone_max_[i]) zone_max_[i] = v;
      }
    }
    for (int b = 0; b < num_boolean_; ++b) {
      const auto i = static_cast<size_t>(b);
      if (boolean_values[b] < zone_bool_min_[i]) {
        zone_bool_min_[i] = boolean_values[b];
      }
      if (boolean_values[b] > zone_bool_max_[i]) {
        zone_bool_max_[i] = boolean_values[b];
      }
    }
  }
  ++row_in_page_;
  ++num_rows_;
  if (row_in_page_ == rows_per_page_) return FlushPage();
  return Status::Ok();
}

Status PagedFileWriter::AppendRawRow(const uint8_t* row) {
  if (format_ == PagedFileFormat::kColumnarV2) {
    // The row-major bytes may be unaligned (caller-owned buffer), so the
    // doubles go through a memcpy-based scatter.
    uint8_t* page = buffer_.data();
    const size_t r = row_in_page_;
    size_t offset = directory_bytes_ + r * sizeof(double);
    for (int c = 0; c < num_numeric_; ++c) {
      std::memcpy(page + offset, row + static_cast<size_t>(c) * 8,
                  sizeof(double));
      if (zone_maps_) {
        double v;
        std::memcpy(&v, row + static_cast<size_t>(c) * 8, sizeof(double));
        if (!std::isnan(v)) {
          const auto i = static_cast<size_t>(c);
          if (v < zone_min_[i]) zone_min_[i] = v;
          if (v > zone_max_[i]) zone_max_[i] = v;
        }
      }
      offset += size_t{rows_per_page_} * sizeof(double);
    }
    const uint8_t* booleans = row + static_cast<size_t>(num_numeric_) * 8;
    offset = directory_bytes_ +
             static_cast<size_t>(num_numeric_) * rows_per_page_ *
                 sizeof(double) +
             r;
    for (int b = 0; b < num_boolean_; ++b) {
      page[offset] = booleans[b];
      if (zone_maps_) {
        const auto i = static_cast<size_t>(b);
        if (booleans[b] < zone_bool_min_[i]) zone_bool_min_[i] = booleans[b];
        if (booleans[b] > zone_bool_max_[i]) zone_bool_max_[i] = booleans[b];
      }
      offset += rows_per_page_;
    }
    ++row_in_page_;
    ++num_rows_;
    if (row_in_page_ == rows_per_page_) return FlushPage();
    return Status::Ok();
  }
  Result<uint8_t*> slot = ReserveRow();
  if (!slot.ok()) return slot.status();
  std::memcpy(slot.value(), row, row_bytes_);
  return Status::Ok();
}

Status PagedFileWriter::AppendRow(std::span<const double> numeric_values,
                                  std::span<const uint8_t> boolean_values) {
  OPTRULES_CHECK(numeric_values.size() == static_cast<size_t>(num_numeric_));
  OPTRULES_CHECK(boolean_values.size() == static_cast<size_t>(num_boolean_));
  if (format_ == PagedFileFormat::kColumnarV2) {
    return AppendRowV2(numeric_values.data(), boolean_values.data());
  }
  // Serialize straight into the write buffer: Create() sizes it to hold at
  // least one row, so arbitrarily wide schemas (the paper's "hundreds of
  // numeric attributes") never hit a fixed-size staging array.
  Result<uint8_t*> slot = ReserveRow();
  if (!slot.ok()) return slot.status();
  std::memcpy(slot.value(), numeric_values.data(),
              numeric_values.size() * sizeof(double));
  std::memcpy(slot.value() + numeric_values.size() * sizeof(double),
              boolean_values.data(), boolean_values.size());
  return Status::Ok();
}

Status PagedFileWriter::Close() {
  OPTRULES_CHECK(file_ != nullptr);
  if (format_ == PagedFileFormat::kColumnarV2) {
    if (row_in_page_ > 0) {
      // Partial last page: the payload past row_in_page_ was never written
      // and is still zero from FlushPage()/Create(), so flushing as-is
      // gives the zero-padded tail readers assert on.
      OPTRULES_RETURN_IF_ERROR(FlushPage());
    }
    if (zone_maps_ &&
        std::fwrite(zone_trailer_.data(), 1, zone_trailer_.size(), file_) !=
            zone_trailer_.size()) {
      return Status::IoError("zone-map trailer write failed: " + path_);
    }
  } else {
    OPTRULES_RETURN_IF_ERROR(FlushBuffer());
  }
  // The row count lives at byte 16 in both header versions.
  if (std::fseek(file_, 16, SEEK_SET) != 0) {
    return Status::IoError("seek failed: " + path_);
  }
  uint8_t count_bytes[8];
  PutU64(count_bytes, static_cast<uint64_t>(num_rows_));
  if (std::fwrite(count_bytes, 1, 8, file_) != 8) {
    return Status::IoError("header patch failed: " + path_);
  }
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::IoError("close failed: " + path_);
  // The bytes behind `path_` just changed: a long-lived default pool must
  // not serve frames cached from a previous file at this path (file
  // timestamps are too coarse to catch a quick same-size rewrite).
  if (BufferPool* pool = BufferPool::Default(); pool != nullptr) {
    pool->InvalidateFile(path_);
  }
  return Status::Ok();
}

Result<PagedFileInfo> ReadPagedFileInfo(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Status::IoError("cannot open: " + path);
  uint8_t header[kPagedFileV2HeaderBytes];
  const size_t got = std::fread(header, 1, sizeof(header), file);
  std::fclose(file);
  // An empty v1 file is exactly 24 bytes, so only the common prefix is
  // required up front; v2 needs the full 32.
  if (got < kPagedFileHeaderBytes) {
    return Status::Corruption("short header: " + path);
  }
  if (GetU32(header) != kMagic) {
    return Status::Corruption("bad magic: " + path);
  }
  const uint32_t version = GetU32(header + 4);
  if (version != 1 && version != 2) {
    return Status::Corruption("unsupported version: " + path);
  }
  PagedFileInfo info;
  info.format_version = version;
  info.num_numeric = static_cast<int>(GetU32(header + 8));
  info.num_boolean = static_cast<int>(GetU32(header + 12));
  info.num_rows = static_cast<int64_t>(GetU64(header + 16));
  info.row_bytes = static_cast<size_t>(info.num_numeric) * sizeof(double) +
                   static_cast<size_t>(info.num_boolean);
  if (version == 2) {
    if (got < kPagedFileV2HeaderBytes) {
      return Status::Corruption("short header: " + path);
    }
    info.header_bytes = kPagedFileV2HeaderBytes;
    info.rows_per_page = GetU32(header + 24);
    if (info.rows_per_page == 0) {
      return Status::Corruption("zero rows_per_page: " + path);
    }
    info.has_zone_maps = (GetU32(header + 28) & kHeaderFlagZoneMaps) != 0;
  }
  return info;
}

Result<ZoneMapIndex> ReadZoneMapIndex(const std::string& path,
                                      const PagedFileInfo& info) {
  OPTRULES_CHECK(info.format_version == 2 && info.has_zone_maps);
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Status::IoError("cannot open: " + path);
  const int64_t pages = info.num_pages();
  const size_t entry = info.zone_map_entry_bytes();
  const int64_t trailer_bytes =
      static_cast<int64_t>(kZoneMapTrailerPrefixBytes) +
      pages * static_cast<int64_t>(entry);
  // The trailer must END the file: seek there first so a truncated or
  // over-long file fails here instead of feeding garbage bounds to the
  // pruning layer.
  if (std::fseek(file, 0, SEEK_END) != 0) {
    std::fclose(file);
    return Status::IoError("seek failed: " + path);
  }
  if (std::ftell(file) != static_cast<long>(info.zone_map_offset() +
                                            trailer_bytes)) {
    std::fclose(file);
    return Status::Corruption("zone-map trailer size mismatch: " + path);
  }
  if (std::fseek(file, static_cast<long>(info.zone_map_offset()),
                 SEEK_SET) != 0) {
    std::fclose(file);
    return Status::IoError("seek failed: " + path);
  }
  uint8_t prefix[kZoneMapTrailerPrefixBytes];
  if (std::fread(prefix, 1, sizeof(prefix), file) != sizeof(prefix)) {
    std::fclose(file);
    return Status::Corruption("truncated zone-map trailer: " + path);
  }
  if (GetU32(prefix) != kZoneMapMagic) {
    std::fclose(file);
    return Status::Corruption("bad zone-map trailer magic: " + path);
  }
  ZoneMapIndex zones;
  zones.num_numeric = info.num_numeric;
  zones.num_boolean = info.num_boolean;
  zones.num_pages = pages;
  zones.numeric_min.resize(static_cast<size_t>(pages) *
                           static_cast<size_t>(info.num_numeric));
  zones.numeric_max.resize(zones.numeric_min.size());
  zones.boolean_min.resize(static_cast<size_t>(pages) *
                           static_cast<size_t>(info.num_boolean));
  zones.boolean_max.resize(zones.boolean_min.size());
  std::vector<uint8_t> buffer(entry);
  for (int64_t p = 0; p < pages; ++p) {
    if (std::fread(buffer.data(), 1, entry, file) != entry) {
      std::fclose(file);
      return Status::Corruption("truncated zone-map trailer: " + path);
    }
    const uint8_t* in = buffer.data();
    for (int c = 0; c < info.num_numeric; ++c) {
      double lo;
      double hi;
      std::memcpy(&lo, in, sizeof(double));
      in += sizeof(double);
      std::memcpy(&hi, in, sizeof(double));
      in += sizeof(double);
      // Bounds are NaN-skipped by construction; a NaN bound, or an
      // inverted pair that is not the all-NaN sentinel (+inf, -inf), can
      // only come from corruption -- and a bad bound would silently prune
      // live pages, so it is rejected like a directory mismatch.
      const bool sentinel =
          lo == std::numeric_limits<double>::infinity() &&
          hi == -std::numeric_limits<double>::infinity();
      if (std::isnan(lo) || std::isnan(hi) || (lo > hi && !sentinel)) {
        std::fclose(file);
        return Status::Corruption("invalid zone-map bounds (page " +
                                  std::to_string(p) + ", numeric column " +
                                  std::to_string(c) + "): " + path);
      }
      zones.numeric_min[static_cast<size_t>(p * info.num_numeric + c)] = lo;
      zones.numeric_max[static_cast<size_t>(p * info.num_numeric + c)] = hi;
    }
    for (int b = 0; b < info.num_boolean; ++b) {
      const uint8_t lo = *in++;
      const uint8_t hi = *in++;
      if (lo > 1 || hi > 1 || lo > hi) {
        std::fclose(file);
        return Status::Corruption("invalid zone-map bounds (page " +
                                  std::to_string(p) + ", boolean column " +
                                  std::to_string(b) + "): " + path);
      }
      zones.boolean_min[static_cast<size_t>(p * info.num_boolean + b)] = lo;
      zones.boolean_max[static_cast<size_t>(p * info.num_boolean + b)] = hi;
    }
  }
  std::fclose(file);
  return zones;
}

Status ValidateZoneMapEntry(const PagedFileInfo& info,
                            const ZoneMapIndex& zones, int64_t page_index,
                            std::span<const uint8_t> page) {
  OPTRULES_CHECK(page.size() == info.page_stride());
  const int64_t rows = info.rows_in_page(page_index);
  for (int c = 0; c < info.num_numeric; ++c) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    const uint8_t* run = page.data() + info.numeric_run_offset(c);
    for (int64_t r = 0; r < rows; ++r) {
      double v;
      std::memcpy(&v, run + static_cast<size_t>(r) * sizeof(double),
                  sizeof(double));
      if (std::isnan(v)) continue;
      if (v < lo) lo = v;
      if (v > hi) hi = v;
    }
    if (std::memcmp(&lo, &zones.numeric_min[static_cast<size_t>(
                              page_index * info.num_numeric + c)],
                    sizeof(double)) != 0 ||
        std::memcmp(&hi, &zones.numeric_max[static_cast<size_t>(
                              page_index * info.num_numeric + c)],
                    sizeof(double)) != 0) {
      return Status::Corruption("zone map disagrees with page content "
                                "(page " +
                                std::to_string(page_index) +
                                ", numeric column " + std::to_string(c) +
                                ")");
    }
  }
  for (int b = 0; b < info.num_boolean; ++b) {
    uint8_t lo = 1;
    uint8_t hi = 0;
    const uint8_t* run = page.data() + info.boolean_run_offset(b);
    for (int64_t r = 0; r < rows; ++r) {
      const uint8_t v = run[r];
      if (v < lo) lo = v;
      if (v > hi) hi = v;
    }
    if (lo != zones.BooleanMin(page_index, b) ||
        hi != zones.BooleanMax(page_index, b)) {
      return Status::Corruption("zone map disagrees with page content "
                                "(page " +
                                std::to_string(page_index) +
                                ", boolean column " + std::to_string(b) +
                                ")");
    }
  }
  return Status::Ok();
}

Status WriteRelationToFile(const Relation& relation, const std::string& path,
                           const PagedFileWriterOptions& options) {
  Result<PagedFileWriter> writer_or =
      PagedFileWriter::Create(path, relation.schema().num_numeric(),
                              relation.schema().num_boolean(), options);
  if (!writer_or.ok()) return writer_or.status();
  PagedFileWriter writer = std::move(writer_or).value();
  std::vector<double> numeric_row(
      static_cast<size_t>(relation.schema().num_numeric()));
  std::vector<uint8_t> boolean_row(
      static_cast<size_t>(relation.schema().num_boolean()));
  for (int64_t row = 0; row < relation.NumRows(); ++row) {
    for (int i = 0; i < relation.schema().num_numeric(); ++i) {
      numeric_row[static_cast<size_t>(i)] = relation.NumericValue(row, i);
    }
    for (int i = 0; i < relation.schema().num_boolean(); ++i) {
      boolean_row[static_cast<size_t>(i)] =
          relation.BooleanValue(row, i) ? 1 : 0;
    }
    OPTRULES_RETURN_IF_ERROR(writer.AppendRow(numeric_row, boolean_row));
  }
  return writer.Close();
}

Status WriteRelationToFile(const Relation& relation,
                           const std::string& path) {
  return WriteRelationToFile(relation, path, PagedFileWriterOptions{});
}

Result<Relation> ReadRelationFromFile(const std::string& path,
                                      const Schema& schema) {
  Result<PagedFileInfo> info_or = ReadPagedFileInfo(path);
  if (!info_or.ok()) return info_or.status();
  const PagedFileInfo& info = info_or.value();
  if (info.num_numeric != schema.num_numeric() ||
      info.num_boolean != schema.num_boolean()) {
    return Status::InvalidArgument(
        "schema attribute counts do not match file: " + path);
  }
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Status::IoError("cannot open: " + path);
  if (std::fseek(file, static_cast<long>(info.header_bytes), SEEK_SET) != 0) {
    std::fclose(file);
    return Status::IoError("seek failed: " + path);
  }
  Relation relation(schema);
  relation.Reserve(info.num_rows);
  std::vector<double> numeric_row(static_cast<size_t>(info.num_numeric));
  std::vector<uint8_t> boolean_row(static_cast<size_t>(info.num_boolean));
  if (info.format_version == 2) {
    // Full-file loads are the integrity backstop: on top of the per-page
    // directory/zero-tail checks, cross-check every zone-map entry against
    // the actual page content when the file carries them.
    ZoneMapIndex zones;
    if (info.has_zone_maps) {
      Result<ZoneMapIndex> zones_or = ReadZoneMapIndex(path, info);
      if (!zones_or.ok()) {
        std::fclose(file);
        return zones_or.status();
      }
      zones = std::move(zones_or).value();
    }
    std::vector<uint8_t> page(info.page_stride());
    for (int64_t p = 0; p < info.num_pages(); ++p) {
      if (std::fread(page.data(), 1, page.size(), file) != page.size()) {
        std::fclose(file);
        return Status::Corruption("truncated file: " + path);
      }
      Status valid = ValidateV2Page(info, p, page);
      if (valid.ok() && info.has_zone_maps) {
        valid = ValidateZoneMapEntry(info, zones, p, page);
      }
      if (!valid.ok()) {
        std::fclose(file);
        return valid;
      }
      const int64_t rows = info.rows_in_page(p);
      for (int64_t r = 0; r < rows; ++r) {
        for (int c = 0; c < info.num_numeric; ++c) {
          std::memcpy(&numeric_row[static_cast<size_t>(c)],
                      page.data() + info.numeric_run_offset(c) +
                          static_cast<size_t>(r) * sizeof(double),
                      sizeof(double));
        }
        for (int b = 0; b < info.num_boolean; ++b) {
          boolean_row[static_cast<size_t>(b)] =
              page[info.boolean_run_offset(b) + static_cast<size_t>(r)];
        }
        relation.AppendRow(numeric_row, boolean_row);
      }
    }
    std::fclose(file);
    return relation;
  }
  std::vector<uint8_t> row(info.row_bytes);
  for (int64_t r = 0; r < info.num_rows; ++r) {
    if (std::fread(row.data(), 1, info.row_bytes, file) != info.row_bytes) {
      std::fclose(file);
      return Status::Corruption("truncated file: " + path);
    }
    std::memcpy(numeric_row.data(), row.data(),
                numeric_row.size() * sizeof(double));
    std::memcpy(boolean_row.data(),
                row.data() + numeric_row.size() * sizeof(double),
                boolean_row.size());
    relation.AppendRow(numeric_row, boolean_row);
  }
  std::fclose(file);
  return relation;
}

}  // namespace optrules::storage
