#include "storage/paged_file.h"

#include <cstring>

namespace optrules::storage {

namespace {

constexpr uint32_t kMagic = 0x4f505452;  // "OPTR"
constexpr uint32_t kVersion = 1;

void PutU32(uint8_t* dst, uint32_t v) { std::memcpy(dst, &v, 4); }
void PutU64(uint8_t* dst, uint64_t v) { std::memcpy(dst, &v, 8); }
uint32_t GetU32(const uint8_t* src) {
  uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}
uint64_t GetU64(const uint8_t* src) {
  uint64_t v;
  std::memcpy(&v, src, 8);
  return v;
}

}  // namespace

Result<PagedFileWriter> PagedFileWriter::Create(const std::string& path,
                                                int num_numeric,
                                                int num_boolean,
                                                size_t buffer_bytes) {
  if (num_numeric < 0 || num_boolean < 0 || num_numeric + num_boolean == 0) {
    return Status::InvalidArgument("invalid attribute counts");
  }
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot create file: " + path);
  }
  PagedFileWriter writer;
  writer.file_ = file;
  writer.path_ = path;
  writer.num_numeric_ = num_numeric;
  writer.num_boolean_ = num_boolean;
  writer.row_bytes_ = static_cast<size_t>(num_numeric) * sizeof(double) +
                      static_cast<size_t>(num_boolean);
  writer.buffer_.resize(std::max(buffer_bytes, writer.row_bytes_));

  uint8_t header[kPagedFileHeaderBytes];
  PutU32(header, kMagic);
  PutU32(header + 4, kVersion);
  PutU32(header + 8, static_cast<uint32_t>(num_numeric));
  PutU32(header + 12, static_cast<uint32_t>(num_boolean));
  PutU64(header + 16, 0);  // row count patched in Close().
  if (std::fwrite(header, 1, sizeof(header), file) != sizeof(header)) {
    std::fclose(file);
    return Status::IoError("cannot write header: " + path);
  }
  return writer;
}

PagedFileWriter::PagedFileWriter(PagedFileWriter&& other) noexcept {
  *this = std::move(other);
}

PagedFileWriter& PagedFileWriter::operator=(
    PagedFileWriter&& other) noexcept {
  if (this == &other) return *this;
  if (file_ != nullptr) std::fclose(file_);
  file_ = other.file_;
  other.file_ = nullptr;
  path_ = std::move(other.path_);
  num_numeric_ = other.num_numeric_;
  num_boolean_ = other.num_boolean_;
  row_bytes_ = other.row_bytes_;
  num_rows_ = other.num_rows_;
  buffer_ = std::move(other.buffer_);
  buffer_used_ = other.buffer_used_;
  return *this;
}

PagedFileWriter::~PagedFileWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status PagedFileWriter::FlushBuffer() {
  if (buffer_used_ == 0) return Status::Ok();
  if (std::fwrite(buffer_.data(), 1, buffer_used_, file_) != buffer_used_) {
    return Status::IoError("write failed: " + path_);
  }
  buffer_used_ = 0;
  return Status::Ok();
}

Result<uint8_t*> PagedFileWriter::ReserveRow() {
  OPTRULES_CHECK(file_ != nullptr);
  if (buffer_used_ + row_bytes_ > buffer_.size()) {
    OPTRULES_RETURN_IF_ERROR(FlushBuffer());
  }
  uint8_t* row = buffer_.data() + buffer_used_;
  buffer_used_ += row_bytes_;
  ++num_rows_;
  return row;
}

Status PagedFileWriter::AppendRawRow(const uint8_t* row) {
  Result<uint8_t*> slot = ReserveRow();
  if (!slot.ok()) return slot.status();
  std::memcpy(slot.value(), row, row_bytes_);
  return Status::Ok();
}

Status PagedFileWriter::AppendRow(std::span<const double> numeric_values,
                                  std::span<const uint8_t> boolean_values) {
  OPTRULES_CHECK(numeric_values.size() == static_cast<size_t>(num_numeric_));
  OPTRULES_CHECK(boolean_values.size() == static_cast<size_t>(num_boolean_));
  // Serialize straight into the write buffer: Create() sizes it to hold at
  // least one row, so arbitrarily wide schemas (the paper's "hundreds of
  // numeric attributes") never hit a fixed-size staging array.
  Result<uint8_t*> slot = ReserveRow();
  if (!slot.ok()) return slot.status();
  std::memcpy(slot.value(), numeric_values.data(),
              numeric_values.size() * sizeof(double));
  std::memcpy(slot.value() + numeric_values.size() * sizeof(double),
              boolean_values.data(), boolean_values.size());
  return Status::Ok();
}

Status PagedFileWriter::Close() {
  OPTRULES_CHECK(file_ != nullptr);
  OPTRULES_RETURN_IF_ERROR(FlushBuffer());
  if (std::fseek(file_, 16, SEEK_SET) != 0) {
    return Status::IoError("seek failed: " + path_);
  }
  uint8_t count_bytes[8];
  PutU64(count_bytes, static_cast<uint64_t>(num_rows_));
  if (std::fwrite(count_bytes, 1, 8, file_) != 8) {
    return Status::IoError("header patch failed: " + path_);
  }
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::IoError("close failed: " + path_);
  return Status::Ok();
}

Result<PagedFileInfo> ReadPagedFileInfo(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Status::IoError("cannot open: " + path);
  uint8_t header[kPagedFileHeaderBytes];
  const size_t got = std::fread(header, 1, sizeof(header), file);
  std::fclose(file);
  if (got != sizeof(header)) {
    return Status::Corruption("short header: " + path);
  }
  if (GetU32(header) != kMagic) {
    return Status::Corruption("bad magic: " + path);
  }
  if (GetU32(header + 4) != kVersion) {
    return Status::Corruption("unsupported version: " + path);
  }
  PagedFileInfo info;
  info.num_numeric = static_cast<int>(GetU32(header + 8));
  info.num_boolean = static_cast<int>(GetU32(header + 12));
  info.num_rows = static_cast<int64_t>(GetU64(header + 16));
  info.row_bytes = static_cast<size_t>(info.num_numeric) * sizeof(double) +
                   static_cast<size_t>(info.num_boolean);
  return info;
}

Status WriteRelationToFile(const Relation& relation,
                           const std::string& path) {
  Result<PagedFileWriter> writer_or = PagedFileWriter::Create(
      path, relation.schema().num_numeric(), relation.schema().num_boolean());
  if (!writer_or.ok()) return writer_or.status();
  PagedFileWriter writer = std::move(writer_or).value();
  std::vector<double> numeric_row(
      static_cast<size_t>(relation.schema().num_numeric()));
  std::vector<uint8_t> boolean_row(
      static_cast<size_t>(relation.schema().num_boolean()));
  for (int64_t row = 0; row < relation.NumRows(); ++row) {
    for (int i = 0; i < relation.schema().num_numeric(); ++i) {
      numeric_row[static_cast<size_t>(i)] = relation.NumericValue(row, i);
    }
    for (int i = 0; i < relation.schema().num_boolean(); ++i) {
      boolean_row[static_cast<size_t>(i)] =
          relation.BooleanValue(row, i) ? 1 : 0;
    }
    OPTRULES_RETURN_IF_ERROR(writer.AppendRow(numeric_row, boolean_row));
  }
  return writer.Close();
}

Result<Relation> ReadRelationFromFile(const std::string& path,
                                      const Schema& schema) {
  Result<PagedFileInfo> info_or = ReadPagedFileInfo(path);
  if (!info_or.ok()) return info_or.status();
  const PagedFileInfo& info = info_or.value();
  if (info.num_numeric != schema.num_numeric() ||
      info.num_boolean != schema.num_boolean()) {
    return Status::InvalidArgument(
        "schema attribute counts do not match file: " + path);
  }
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Status::IoError("cannot open: " + path);
  if (std::fseek(file, static_cast<long>(kPagedFileHeaderBytes), SEEK_SET) !=
      0) {
    std::fclose(file);
    return Status::IoError("seek failed: " + path);
  }
  Relation relation(schema);
  relation.Reserve(info.num_rows);
  std::vector<uint8_t> row(info.row_bytes);
  std::vector<double> numeric_row(static_cast<size_t>(info.num_numeric));
  std::vector<uint8_t> boolean_row(static_cast<size_t>(info.num_boolean));
  for (int64_t r = 0; r < info.num_rows; ++r) {
    if (std::fread(row.data(), 1, info.row_bytes, file) != info.row_bytes) {
      std::fclose(file);
      return Status::Corruption("truncated file: " + path);
    }
    std::memcpy(numeric_row.data(), row.data(),
                numeric_row.size() * sizeof(double));
    std::memcpy(boolean_row.data(),
                row.data() + numeric_row.size() * sizeof(double),
                boolean_row.size());
    relation.AppendRow(numeric_row, boolean_row);
  }
  std::fclose(file);
  return relation;
}

}  // namespace optrules::storage
