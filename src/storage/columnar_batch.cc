#include "storage/columnar_batch.h"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>

#include "common/timer.h"
#include "obs/metrics.h"

namespace optrules::storage {

namespace {

/// Per-page io-wait flush: the wait lands in the source's accumulator and
/// the registry histogram the moment the page completes, so long-lived
/// readers report live values instead of a lump sum at destruction.
void RecordIoWait(std::atomic<double>* accum, double seconds) {
  static obs::Histogram* const hist =
      obs::MetricsRegistry::Default().GetHistogram(
          "storage.page_io_wait_seconds");
  hist->Observe(seconds);
  if (accum != nullptr) accum->fetch_add(seconds);
}

obs::Counter* PagesSkippedCounter() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Default().GetCounter("storage.pages_skipped");
  return counter;
}

}  // namespace

void ColumnarBatch::Reset(int num_numeric, int num_boolean) {
  num_rows_ = 0;
  numeric_.assign(static_cast<size_t>(num_numeric), {});
  boolean_.assign(static_cast<size_t>(num_boolean), {});
}

void ColumnarBatch::SetRows(int64_t rows) {
  OPTRULES_CHECK(rows >= 0);
  num_rows_ = rows;
}

void ColumnarBatch::SetNumeric(int i, std::span<const double> column) {
  numeric_[static_cast<size_t>(i)] = column;
}

void ColumnarBatch::SetBoolean(int i, std::span<const uint8_t> column) {
  boolean_[static_cast<size_t>(i)] = column;
}

std::unique_ptr<BatchReader> BatchSource::CreateRangeReader(int64_t /*begin*/,
                                                            int64_t /*end*/) {
  OPTRULES_CHECK(false);  // only valid when SupportsRangeReaders()
  return nullptr;
}

// ----------------------------------------------------------- relation ----

namespace {

/// Serves [begin, end) of a relation as zero-copy column subspans.
class RelationBatchReader : public BatchReader {
 public:
  RelationBatchReader(const Relation* relation, int64_t begin, int64_t end,
                      int64_t batch_rows)
      : relation_(relation),
        position_(begin),
        end_(end),
        batch_rows_(batch_rows) {}

  bool Next(ColumnarBatch* batch) override {
    if (position_ >= end_) return false;
    const int64_t rows = std::min(batch_rows_, end_ - position_);
    const Schema& schema = relation_->schema();
    batch->Reset(schema.num_numeric(), schema.num_boolean());
    batch->SetRows(rows);
    const auto offset = static_cast<size_t>(position_);
    const auto count = static_cast<size_t>(rows);
    for (int i = 0; i < schema.num_numeric(); ++i) {
      batch->SetNumeric(
          i, std::span<const double>(relation_->NumericColumn(i))
                 .subspan(offset, count));
    }
    for (int i = 0; i < schema.num_boolean(); ++i) {
      batch->SetBoolean(
          i, std::span<const uint8_t>(relation_->BooleanColumn(i))
                 .subspan(offset, count));
    }
    position_ += rows;
    return true;
  }

 private:
  const Relation* relation_;
  int64_t position_;
  int64_t end_;
  int64_t batch_rows_;
};

}  // namespace

RelationBatchSource::RelationBatchSource(const Relation* relation,
                                         int64_t batch_rows)
    : relation_(relation), batch_rows_(batch_rows) {
  OPTRULES_CHECK(relation != nullptr);
  OPTRULES_CHECK(batch_rows >= 1);
}

int RelationBatchSource::num_numeric() const {
  return relation_->schema().num_numeric();
}

int RelationBatchSource::num_boolean() const {
  return relation_->schema().num_boolean();
}

int64_t RelationBatchSource::NumTuples() const {
  return relation_->NumRows();
}

std::unique_ptr<BatchReader> RelationBatchSource::DoCreateReader() {
  return std::make_unique<RelationBatchReader>(relation_, 0,
                                               relation_->NumRows(),
                                               batch_rows_);
}

std::unique_ptr<BatchReader> RelationBatchSource::CreateRangeReader(
    int64_t begin, int64_t end) {
  OPTRULES_CHECK(0 <= begin && begin <= end && end <= relation_->NumRows());
  return std::make_unique<RelationBatchReader>(relation_, begin, end,
                                               batch_rows_);
}

// ---------------------------------------------------------- paged file ----

namespace {

/// Seeks to an absolute byte offset in chunks that fit a 32-bit long, so
/// shard offsets in files beyond 2 GiB work on every platform (plain
/// fseek takes a long, which is 32 bits on some targets).
void SeekToOffset(std::FILE* file, uint64_t offset) {
  OPTRULES_CHECK(std::fseek(file, 0, SEEK_SET) == 0);
  constexpr uint64_t kChunk = 1u << 30;
  while (offset > 0) {
    const uint64_t step = std::min(offset, kChunk);
    OPTRULES_CHECK(std::fseek(file, static_cast<long>(step), SEEK_CUR) == 0);
    offset -= step;
  }
}

/// Reads fixed-width rows page-wise and transposes them into owned column
/// buffers. Each reader has its own FILE handle, so sharded readers can
/// stream concurrently.
///
/// In kDoubleBuffered mode a per-reader prefetch thread prepares page N+1
/// (fread AND transpose, into its own slot of a two-slot ring) while the
/// caller computes over page N's columns, so the whole per-page
/// read+transpose cost overlaps with compute. The counters enforce
/// produced_ - consumed_ <= 2 with the consumer holding slot consumed_ % 2
/// and the producer filling produced_ % 2, so the threads are always in
/// disjoint slots; a consumed slot is released only on the NEXT Next()
/// call, because the batch spans handed to the caller alias the slot's
/// column buffers and must stay valid until then. Batches are
/// bit-identical across both modes.
class PagedFileBatchReader : public BatchReader {
 public:
  PagedFileBatchReader(std::FILE* file, const PagedFileInfo& info,
                       int64_t begin, int64_t end, int64_t batch_rows,
                       PagedReadMode mode, std::atomic<double>* io_wait_accum)
      : file_(file),
        info_(info),
        position_(begin),
        end_(end),
        batch_rows_(batch_rows),
        mode_(mode),
        io_wait_accum_(io_wait_accum) {
    const size_t slots =
        mode_ == PagedReadMode::kDoubleBuffered ? 2 : 1;
    slots_.resize(slots);
    for (PageSlot& slot : slots_) {
      slot.page.resize(static_cast<size_t>(batch_rows) * info_.row_bytes);
      slot.numeric.assign(
          static_cast<size_t>(info_.num_numeric),
          std::vector<double>(static_cast<size_t>(batch_rows)));
      slot.boolean.assign(
          static_cast<size_t>(info_.num_boolean),
          std::vector<uint8_t>(static_cast<size_t>(batch_rows)));
    }
    if (mode_ == PagedReadMode::kDoubleBuffered && position_ < end_) {
      prefetcher_ = std::thread([this] { PrefetchLoop(); });
    }
  }

  ~PagedFileBatchReader() override {
    if (prefetcher_.joinable()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
      }
      slot_free_cv_.notify_all();
      prefetcher_.join();
    }
    if (file_ != nullptr) std::fclose(file_);
  }

  bool Next(ColumnarBatch* batch) override {
    if (position_ >= end_) return false;
    const int64_t want = std::min(batch_rows_, end_ - position_);
    const PageSlot* slot = nullptr;
    if (mode_ == PagedReadMode::kDoubleBuffered) {
      {
        WallTimer wait_timer;
        std::unique_lock<std::mutex> lock(mu_);
        // Release the previously held slot (its spans die with this call)
        // and wait for the prefetcher to publish the next one.
        if (holding_slot_) {
          ++consumed_;
          slot_free_cv_.notify_all();
        }
        slot_ready_cv_.wait(lock, [&] { return produced_ > consumed_; });
        holding_slot_ = true;
        RecordIoWait(io_wait_accum_, wait_timer.ElapsedSeconds());
      }
      slot = &slots_[static_cast<size_t>(consumed_ % 2)];
      OPTRULES_CHECK(slot->rows == want);
    } else {
      PageSlot& mine = slots_[0];
      WallTimer read_timer;
      const size_t got = std::fread(mine.page.data(), info_.row_bytes,
                                    static_cast<size_t>(want), file_);
      RecordIoWait(io_wait_accum_, read_timer.ElapsedSeconds());
      // end_ is bounded by the header's row count, so a short read means a
      // truncated or failing file; silently accepting it would merge
      // partial counts with no diagnostic.
      OPTRULES_CHECK(got == static_cast<size_t>(want));
      mine.rows = want;
      Transpose(&mine);
      slot = &mine;
    }
    batch->Reset(info_.num_numeric, info_.num_boolean);
    batch->SetRows(want);
    for (int i = 0; i < info_.num_numeric; ++i) {
      batch->SetNumeric(
          i, std::span<const double>(slot->numeric[static_cast<size_t>(i)])
                 .first(static_cast<size_t>(want)));
    }
    for (int i = 0; i < info_.num_boolean; ++i) {
      batch->SetBoolean(
          i, std::span<const uint8_t>(slot->boolean[static_cast<size_t>(i)])
                 .first(static_cast<size_t>(want)));
    }
    position_ += want;
    return true;
  }

 private:
  struct PageSlot {
    std::vector<uint8_t> page;  ///< row-major staging buffer
    std::vector<std::vector<double>> numeric;
    std::vector<std::vector<uint8_t>> boolean;
    int64_t rows = 0;
  };

  /// Prefetch thread: reads and transposes every page of [begin, end)
  /// into the two-slot ring, staying at most one page ahead of the
  /// consumer.
  void PrefetchLoop() {
    int64_t remaining = end_ - position_;
    while (remaining > 0) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        slot_free_cv_.wait(
            lock, [&] { return stop_ || produced_ - consumed_ < 2; });
        if (stop_) return;
      }
      PageSlot& slot = slots_[static_cast<size_t>(produced_ % 2)];
      const int64_t want = std::min(batch_rows_, remaining);
      const size_t got = std::fread(slot.page.data(), info_.row_bytes,
                                    static_cast<size_t>(want), file_);
      // Same truncation policy as the synchronous path.
      OPTRULES_CHECK(got == static_cast<size_t>(want));
      slot.rows = want;
      Transpose(&slot);
      remaining -= want;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++produced_;
      }
      slot_ready_cv_.notify_all();
    }
  }

  /// Transposes the slot's row-major page into its column buffers.
  void Transpose(PageSlot* slot) {
    const size_t boolean_offset =
        static_cast<size_t>(info_.num_numeric) * sizeof(double);
    for (int64_t r = 0; r < slot->rows; ++r) {
      const uint8_t* row =
          slot->page.data() + static_cast<size_t>(r) * info_.row_bytes;
      for (int i = 0; i < info_.num_numeric; ++i) {
        std::memcpy(
            &slot->numeric[static_cast<size_t>(i)][static_cast<size_t>(r)],
            row + static_cast<size_t>(i) * sizeof(double), sizeof(double));
      }
      for (int i = 0; i < info_.num_boolean; ++i) {
        slot->boolean[static_cast<size_t>(i)][static_cast<size_t>(r)] =
            row[boolean_offset + static_cast<size_t>(i)];
      }
    }
  }

  std::FILE* file_;
  PagedFileInfo info_;
  int64_t position_;
  int64_t end_;
  int64_t batch_rows_;
  PagedReadMode mode_;
  // Double-buffer state. produced_/consumed_ are page counters guarded by
  // mu_; the slot contents need no lock because the counters keep the two
  // threads in disjoint slots, and the counter handoff under mu_ publishes
  // the slot contents (release/acquire via the mutex).
  std::vector<PageSlot> slots_;
  std::mutex mu_;
  std::condition_variable slot_ready_cv_;
  std::condition_variable slot_free_cv_;
  int64_t produced_ = 0;
  int64_t consumed_ = 0;
  bool holding_slot_ = false;
  bool stop_ = false;
  std::thread prefetcher_;
  std::atomic<double>* io_wait_accum_;
};

/// Zero-transpose reader over a columnar v2 file. A slot holds one raw
/// on-disk page; batches are spans pointing directly into its column runs
/// (offset by the batch's position inside the page), so there is no
/// per-row work at all between fread and the counting kernels. Batches
/// clamp to page boundaries -- counting results are independent of batch
/// splits (row order is preserved), so this is invisible to consumers.
///
/// The consumer holds the slot containing its current page across multiple
/// Next() calls (batch_rows is usually much smaller than rows_per_page)
/// and releases it only when position_ crosses into the next page; the
/// double-buffered prefetch thread stays one PAGE ahead (not one batch),
/// reading raw pages with zero processing on either side of the handoff.
/// The produced_/consumed_ counter protocol is the same as the v1
/// reader's.
class PagedFileV2BatchReader : public BatchReader {
 public:
  PagedFileV2BatchReader(std::FILE* file, const PagedFileInfo& info,
                         int64_t begin, int64_t end, int64_t batch_rows,
                         PagedReadMode mode,
                         std::atomic<double>* io_wait_accum)
      : file_(file),
        info_(info),
        position_(begin),
        end_(end),
        batch_rows_(batch_rows),
        mode_(mode),
        io_wait_accum_(io_wait_accum),
        next_page_to_read_(begin /
                           static_cast<int64_t>(info.rows_per_page)) {
    OPTRULES_CHECK(info_.format_version == 2);
    const size_t slots =
        mode_ == PagedReadMode::kDoubleBuffered ? 2 : 1;
    slots_.resize(slots);
    for (PageSlot& slot : slots_) {
      slot.page.resize(info_.page_stride());
    }
    if (mode_ == PagedReadMode::kDoubleBuffered && position_ < end_) {
      prefetcher_ = std::thread([this] { PrefetchLoop(); });
    }
  }

  ~PagedFileV2BatchReader() override {
    if (prefetcher_.joinable()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
      }
      slot_free_cv_.notify_all();
      prefetcher_.join();
    }
    if (file_ != nullptr) std::fclose(file_);
  }

  bool Next(ColumnarBatch* batch) override {
    if (position_ >= end_) return false;
    const auto rpp = static_cast<int64_t>(info_.rows_per_page);
    const int64_t page = position_ / rpp;
    if (!holding_slot_ || held_page_ != page) AcquirePage(page);
    const PageSlot& slot = slots_[static_cast<size_t>(held_slot_)];
    const int64_t in_page = position_ - page * rpp;
    const int64_t want = std::min(
        {batch_rows_, end_ - position_, slot.rows - in_page});
    OPTRULES_CHECK(want > 0);
    const uint8_t* base = slot.page.data();
    batch->Reset(info_.num_numeric, info_.num_boolean);
    batch->SetRows(want);
    for (int c = 0; c < info_.num_numeric; ++c) {
      // The run is 8-byte aligned: the directory is padded to 8 bytes and
      // the page buffer is allocator-aligned.
      const auto* run = reinterpret_cast<const double*>(
          base + info_.numeric_run_offset(c));
      batch->SetNumeric(
          c, std::span<const double>(run + in_page,
                                     static_cast<size_t>(want)));
    }
    for (int b = 0; b < info_.num_boolean; ++b) {
      batch->SetBoolean(
          b, std::span<const uint8_t>(
                 base + info_.boolean_run_offset(b) + in_page,
                 static_cast<size_t>(want)));
    }
    position_ += want;
    return true;
  }

 private:
  struct PageSlot {
    std::vector<uint8_t> page;  ///< one raw on-disk page (page_stride bytes)
    int64_t page_index = -1;
    int64_t rows = 0;  ///< rows stored in this page (partial last page)
  };

  /// Reads the next sequential page into `slot` (the file position is
  /// always at the next unread page -- pages are consumed strictly in
  /// order). Pages are full-stride on disk even when partially filled.
  void ReadPage(PageSlot* slot) {
    WallTimer read_timer;
    const size_t got =
        std::fread(slot->page.data(), 1, slot->page.size(), file_);
    const double elapsed = read_timer.ElapsedSeconds();
    OPTRULES_CHECK(got == slot->page.size());
    slot->page_index = next_page_to_read_;
    slot->rows = info_.rows_in_page(next_page_to_read_);
    const Status valid = ValidateV2Page(info_, slot->page_index, slot->page);
    OPTRULES_CHECK(valid.ok());
    ++next_page_to_read_;
    if (mode_ == PagedReadMode::kSynchronous) {
      RecordIoWait(io_wait_accum_, elapsed);
    }
  }

  /// Makes `page` the held slot: releases the previous page's slot and
  /// either reads the page synchronously or waits for the prefetcher.
  void AcquirePage(int64_t page) {
    if (mode_ == PagedReadMode::kSynchronous) {
      ReadPage(&slots_[0]);
      held_slot_ = 0;
    } else {
      WallTimer wait_timer;
      std::unique_lock<std::mutex> lock(mu_);
      if (holding_slot_) {
        ++consumed_;
        slot_free_cv_.notify_all();
      }
      slot_ready_cv_.wait(lock, [&] { return produced_ > consumed_; });
      RecordIoWait(io_wait_accum_, wait_timer.ElapsedSeconds());
      held_slot_ = static_cast<int>(consumed_ % 2);
    }
    holding_slot_ = true;
    held_page_ = page;
    OPTRULES_CHECK(
        slots_[static_cast<size_t>(held_slot_)].page_index == page);
  }

  /// Prefetch thread: reads every page covering [begin, end) into the
  /// two-slot ring, staying at most one page ahead of the consumer.
  void PrefetchLoop() {
    const auto rpp = static_cast<int64_t>(info_.rows_per_page);
    const int64_t last_page = (end_ - 1) / rpp;
    for (int64_t page = next_page_to_read_; page <= last_page; ++page) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        slot_free_cv_.wait(
            lock, [&] { return stop_ || produced_ - consumed_ < 2; });
        if (stop_) return;
      }
      ReadPage(&slots_[static_cast<size_t>(produced_ % 2)]);
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++produced_;
      }
      slot_ready_cv_.notify_all();
    }
  }

  std::FILE* file_;
  PagedFileInfo info_;
  int64_t position_;
  int64_t end_;
  int64_t batch_rows_;
  PagedReadMode mode_;
  std::atomic<double>* io_wait_accum_;
  /// Next sequential page the file position points at. Owned by the
  /// reading side: the consumer in synchronous mode, the prefetch thread
  /// in double-buffered mode (which reads its initial value before the
  /// consumer ever touches a slot).
  int64_t next_page_to_read_;
  std::vector<PageSlot> slots_;
  std::mutex mu_;
  std::condition_variable slot_ready_cv_;
  std::condition_variable slot_free_cv_;
  int64_t produced_ = 0;
  int64_t consumed_ = 0;
  bool holding_slot_ = false;
  int held_slot_ = 0;
  int64_t held_page_ = -1;
  bool stop_ = false;
  std::thread prefetcher_;
};

// ------------------------------------------------- pooled read path ----

/// Everything a pooled reader needs from its source: where the pages live,
/// how to identify them in the pool, what may be pruned, and where to
/// accumulate the counters when the reader dies.
struct PooledReaderContext {
  std::string path;
  PagedFileInfo info;
  BufferPool* pool = nullptr;
  uint64_t file_id = 0;
  std::shared_ptr<const ZoneMapIndex> zones;
  std::shared_ptr<const ScanPruneSpec> prune;
  std::atomic<double>* io_wait_accum = nullptr;
  std::atomic<int64_t>* hits_accum = nullptr;
  std::atomic<int64_t>* misses_accum = nullptr;
  std::atomic<int64_t>* skipped_accum = nullptr;
};

/// True when page `page` provably contributes nothing to the installed
/// prune spec beyond its row count: a numeric column "has a value" iff its
/// zone-map bounds are non-sentinel (min <= max), a Boolean column "has a
/// true row" iff its max byte is 1.
bool PageIsDead(const PooledReaderContext& ctx, int64_t page) {
  if (ctx.zones == nullptr || ctx.prune == nullptr || ctx.prune->empty()) {
    return false;
  }
  const ZoneMapIndex& z = *ctx.zones;
  return AllUnitsDead(
      *ctx.prune,
      [&](int c) { return z.NumericMin(page, c) <= z.NumericMax(page, c); },
      [&](int b) { return z.BooleanMax(page, b) != 0; });
}

/// Zero-transpose reader over a columnar v2 file whose pages flow through
/// the shared BufferPool. The reader PINS the frame holding its current
/// page and serves batch spans pointing straight into the pinned bytes --
/// the pin is released only when the scan crosses into the next page, so
/// spans outlive the Next() call that produced them exactly as in the
/// private-buffer reader. Pages the installed ScanPruneSpec proves dead
/// are skipped without touching the pool (their rows are accounted via
/// pruned_rows()).
///
/// In kDoubleBuffered mode a per-reader prefetch thread with its own FILE
/// handle walks the same live-page sequence one page ahead of the consumer
/// and issues BufferPool::Prefetch hints; the pool's loading-frame
/// protocol makes the consumer's later Fetch wait on the in-flight load
/// instead of re-reading, which is what turns the old private two-slot
/// ring into shared cache warming. Pacing is by live-page ORDINAL (pruned
/// pages are invisible to it), so a long dead stretch cannot stall the
/// prefetcher behind page-number arithmetic.
class PooledV2BatchReader : public BatchReader {
 public:
  PooledV2BatchReader(PooledReaderContext ctx, std::FILE* file, int64_t begin,
                      int64_t end, int64_t batch_rows, PagedReadMode mode)
      : ctx_(std::move(ctx)),
        file_(file),
        begin_(begin),
        position_(begin),
        end_(end),
        batch_rows_(batch_rows) {
    OPTRULES_CHECK(ctx_.info.format_version == 2);
    if (mode == PagedReadMode::kDoubleBuffered && position_ < end_) {
      prefetch_file_ = std::fopen(ctx_.path.c_str(), "rb");
      if (prefetch_file_ != nullptr) {
        prefetcher_ = std::thread([this] { PrefetchLoop(); });
      }
    }
  }

  ~PooledV2BatchReader() override {
    if (prefetcher_.joinable()) {
      {
        std::lock_guard<std::mutex> lock(pf_mu_);
        stop_ = true;
      }
      pf_cv_.notify_all();
      prefetcher_.join();
    }
    if (prefetch_file_ != nullptr) std::fclose(prefetch_file_);
    pin_.Reset();
    if (file_ != nullptr) std::fclose(file_);
    if (ctx_.hits_accum != nullptr) ctx_.hits_accum->fetch_add(hits_);
    if (ctx_.misses_accum != nullptr) ctx_.misses_accum->fetch_add(misses_);
    if (ctx_.skipped_accum != nullptr) {
      ctx_.skipped_accum->fetch_add(pages_skipped_);
    }
  }

  bool Next(ColumnarBatch* batch) override {
    const auto rpp = static_cast<int64_t>(ctx_.info.rows_per_page);
    while (position_ < end_) {
      const int64_t page = position_ / rpp;
      const int64_t page_limit =
          std::min(end_, page * rpp + ctx_.info.rows_in_page(page));
      if (PageIsDead(ctx_, page)) {
        pruned_rows_ += page_limit - position_;
        ++pages_skipped_;
        PagesSkippedCounter()->Add();
        position_ = (page + 1) * rpp;
        continue;
      }
      if (!pin_ || pinned_page_ != page) PinPage(page);
      const int64_t in_page = position_ - page * rpp;
      const int64_t want = std::min(batch_rows_, page_limit - position_);
      OPTRULES_CHECK(want > 0);
      const uint8_t* base = pin_.data();
      batch->Reset(ctx_.info.num_numeric, ctx_.info.num_boolean);
      batch->SetRows(want);
      for (int c = 0; c < ctx_.info.num_numeric; ++c) {
        const auto* run = reinterpret_cast<const double*>(
            base + ctx_.info.numeric_run_offset(c));
        batch->SetNumeric(c, std::span<const double>(
                                 run + in_page, static_cast<size_t>(want)));
      }
      for (int b = 0; b < ctx_.info.num_boolean; ++b) {
        batch->SetBoolean(
            b, std::span<const uint8_t>(
                   base + ctx_.info.boolean_run_offset(b) + in_page,
                   static_cast<size_t>(want)));
      }
      position_ += want;
      return true;
    }
    return false;
  }

  int64_t pruned_rows() const override { return pruned_rows_; }

 private:
  /// Loader for page `page` reading through `file` (the consumer's handle
  /// or the prefetcher's -- each thread only ever passes its own).
  BufferPool::Loader MakeLoader(std::FILE* file, int64_t page) {
    const size_t stride = ctx_.info.page_stride();
    return [this, file, page, stride](uint8_t* dest) -> Status {
      SeekToOffset(file, static_cast<uint64_t>(ctx_.info.header_bytes) +
                             static_cast<uint64_t>(page) * stride);
      if (std::fread(dest, 1, stride, file) != stride) {
        return Status::IoError("short read of page " +
                               std::to_string(page) + " in " + ctx_.path);
      }
      return ValidateV2Page(ctx_.info, page,
                            std::span<const uint8_t>(dest, stride));
    };
  }

  void PinPage(int64_t page) {
    WallTimer wait_timer;
    bool was_hit = false;
    Result<BufferPool::Pin> pin =
        ctx_.pool->Fetch(ctx_.file_id, page, ctx_.info.page_stride(),
                         MakeLoader(file_, page), &was_hit);
    // end_ is bounded by the header's row count, so a failed load means a
    // truncated or corrupt file; silently accepting it would merge partial
    // counts with no diagnostic (same policy as the unpooled readers).
    OPTRULES_CHECK(pin.ok());
    pin_ = std::move(pin.value());
    pinned_page_ = page;
    RecordIoWait(ctx_.io_wait_accum, wait_timer.ElapsedSeconds());
    if (was_hit) {
      ++hits_;
    } else {
      ++misses_;
    }
    if (prefetcher_.joinable()) {
      {
        std::lock_guard<std::mutex> lock(pf_mu_);
        ++live_pages_consumed_;
      }
      pf_cv_.notify_all();
    }
  }

  /// Prefetch thread: warms the pool with every live page of [begin, end)
  /// in scan order, at most one live page past what the consumer pinned.
  void PrefetchLoop() {
    const auto rpp = static_cast<int64_t>(ctx_.info.rows_per_page);
    const int64_t first_page = begin_ / rpp;
    const int64_t last_page = (end_ - 1) / rpp;
    int64_t ordinal = 0;  // index into the live-page sequence
    for (int64_t page = first_page; page <= last_page; ++page) {
      if (PageIsDead(ctx_, page)) continue;
      {
        std::unique_lock<std::mutex> lock(pf_mu_);
        pf_cv_.wait(lock, [&] {
          return stop_ || ordinal <= live_pages_consumed_;
        });
        if (stop_) return;
      }
      ctx_.pool->Prefetch(ctx_.file_id, page, ctx_.info.page_stride(),
                          MakeLoader(prefetch_file_, page));
      ++ordinal;
    }
  }

  PooledReaderContext ctx_;
  std::FILE* file_;
  const int64_t begin_;  ///< immutable; the prefetch thread reads it
  int64_t position_;
  int64_t end_;
  int64_t batch_rows_;
  BufferPool::Pin pin_;
  int64_t pinned_page_ = -1;
  int64_t pruned_rows_ = 0;
  int64_t pages_skipped_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  // Prefetch pacing: the consumer counts the live pages it has pinned;
  // the prefetcher stalls until its next live page is at most one past
  // that count.
  std::FILE* prefetch_file_ = nullptr;
  std::mutex pf_mu_;
  std::condition_variable pf_cv_;
  int64_t live_pages_consumed_ = 0;
  bool stop_ = false;
  std::thread prefetcher_;
};

/// Pooled reader over a row-major v1 file. v1 has no page geometry, so the
/// reader imposes one: fixed BLOCKS of rows (a pure function of the row
/// width, so every reader of the file agrees on block boundaries and the
/// pool can share frames across readers and sessions), cached in the pool
/// keyed by block index. The consumer pins its current block and
/// transposes batch-sized slices into owned column buffers; batches clamp
/// to block boundaries (counting results are independent of batch splits).
/// v1 files carry no zone maps, so there is no pruning here. Prefetch
/// pacing mirrors the v2 reader, minus the pruning.
class PooledV1BatchReader : public BatchReader {
 public:
  /// Rows per cached block: the v1 analogue of AutoRowsPerPage's ~1 MiB
  /// target, clamped to [256, 65536].
  static int64_t BlockRows(size_t row_bytes) {
    const auto rows = static_cast<int64_t>((size_t{1} << 20) / row_bytes);
    return std::clamp<int64_t>(rows, 256, 65536);
  }

  PooledV1BatchReader(PooledReaderContext ctx, std::FILE* file, int64_t begin,
                      int64_t end, int64_t batch_rows, PagedReadMode mode)
      : ctx_(std::move(ctx)),
        file_(file),
        begin_(begin),
        position_(begin),
        end_(end),
        batch_rows_(batch_rows),
        block_rows_(BlockRows(ctx_.info.row_bytes)) {
    OPTRULES_CHECK(ctx_.info.format_version == 1);
    numeric_.assign(static_cast<size_t>(ctx_.info.num_numeric),
                    std::vector<double>(static_cast<size_t>(batch_rows)));
    boolean_.assign(static_cast<size_t>(ctx_.info.num_boolean),
                    std::vector<uint8_t>(static_cast<size_t>(batch_rows)));
    if (mode == PagedReadMode::kDoubleBuffered && position_ < end_) {
      prefetch_file_ = std::fopen(ctx_.path.c_str(), "rb");
      if (prefetch_file_ != nullptr) {
        prefetcher_ = std::thread([this] { PrefetchLoop(); });
      }
    }
  }

  ~PooledV1BatchReader() override {
    if (prefetcher_.joinable()) {
      {
        std::lock_guard<std::mutex> lock(pf_mu_);
        stop_ = true;
      }
      pf_cv_.notify_all();
      prefetcher_.join();
    }
    if (prefetch_file_ != nullptr) std::fclose(prefetch_file_);
    pin_.Reset();
    if (file_ != nullptr) std::fclose(file_);
    if (ctx_.hits_accum != nullptr) ctx_.hits_accum->fetch_add(hits_);
    if (ctx_.misses_accum != nullptr) ctx_.misses_accum->fetch_add(misses_);
  }

  bool Next(ColumnarBatch* batch) override {
    if (position_ >= end_) return false;
    const int64_t block = position_ / block_rows_;
    if (!pin_ || pinned_block_ != block) PinBlock(block);
    const int64_t block_limit =
        std::min(end_, std::min((block + 1) * block_rows_,
                                ctx_.info.num_rows));
    const int64_t want = std::min(batch_rows_, block_limit - position_);
    OPTRULES_CHECK(want > 0);
    const int64_t in_block = position_ - block * block_rows_;
    Transpose(in_block, want);
    batch->Reset(ctx_.info.num_numeric, ctx_.info.num_boolean);
    batch->SetRows(want);
    for (int i = 0; i < ctx_.info.num_numeric; ++i) {
      batch->SetNumeric(
          i, std::span<const double>(numeric_[static_cast<size_t>(i)])
                 .first(static_cast<size_t>(want)));
    }
    for (int i = 0; i < ctx_.info.num_boolean; ++i) {
      batch->SetBoolean(
          i, std::span<const uint8_t>(boolean_[static_cast<size_t>(i)])
                 .first(static_cast<size_t>(want)));
    }
    position_ += want;
    return true;
  }

 private:
  /// Rows stored in `block` (only the last block of the file is partial).
  int64_t RowsInBlock(int64_t block) const {
    return std::min(block_rows_,
                    ctx_.info.num_rows - block * block_rows_);
  }

  BufferPool::Loader MakeLoader(std::FILE* file, int64_t block) {
    const size_t bytes =
        static_cast<size_t>(RowsInBlock(block)) * ctx_.info.row_bytes;
    return [this, file, block, bytes](uint8_t* dest) -> Status {
      SeekToOffset(file,
                   static_cast<uint64_t>(ctx_.info.header_bytes) +
                       static_cast<uint64_t>(block * block_rows_) *
                           ctx_.info.row_bytes);
      if (std::fread(dest, 1, bytes, file) != bytes) {
        return Status::IoError("short read of block " +
                               std::to_string(block) + " in " + ctx_.path);
      }
      return Status::Ok();
    };
  }

  void PinBlock(int64_t block) {
    WallTimer wait_timer;
    bool was_hit = false;
    const size_t bytes =
        static_cast<size_t>(RowsInBlock(block)) * ctx_.info.row_bytes;
    Result<BufferPool::Pin> pin = ctx_.pool->Fetch(
        ctx_.file_id, block, bytes, MakeLoader(file_, block), &was_hit);
    OPTRULES_CHECK(pin.ok());
    pin_ = std::move(pin.value());
    pinned_block_ = block;
    RecordIoWait(ctx_.io_wait_accum, wait_timer.ElapsedSeconds());
    if (was_hit) {
      ++hits_;
    } else {
      ++misses_;
    }
    if (prefetcher_.joinable()) {
      {
        std::lock_guard<std::mutex> lock(pf_mu_);
        ++blocks_consumed_;
      }
      pf_cv_.notify_all();
    }
  }

  /// Transposes rows [in_block, in_block + rows) of the pinned block into
  /// the owned column buffers.
  void Transpose(int64_t in_block, int64_t rows) {
    const size_t boolean_offset =
        static_cast<size_t>(ctx_.info.num_numeric) * sizeof(double);
    const uint8_t* base =
        pin_.data() + static_cast<size_t>(in_block) * ctx_.info.row_bytes;
    for (int64_t r = 0; r < rows; ++r) {
      const uint8_t* row = base + static_cast<size_t>(r) * ctx_.info.row_bytes;
      for (int i = 0; i < ctx_.info.num_numeric; ++i) {
        std::memcpy(
            &numeric_[static_cast<size_t>(i)][static_cast<size_t>(r)],
            row + static_cast<size_t>(i) * sizeof(double), sizeof(double));
      }
      for (int i = 0; i < ctx_.info.num_boolean; ++i) {
        boolean_[static_cast<size_t>(i)][static_cast<size_t>(r)] =
            row[boolean_offset + static_cast<size_t>(i)];
      }
    }
  }

  void PrefetchLoop() {
    const int64_t first_block = begin_ / block_rows_;
    const int64_t last_block = (end_ - 1) / block_rows_;
    int64_t ordinal = 0;
    for (int64_t block = first_block; block <= last_block; ++block) {
      {
        std::unique_lock<std::mutex> lock(pf_mu_);
        pf_cv_.wait(lock,
                    [&] { return stop_ || ordinal <= blocks_consumed_; });
        if (stop_) return;
      }
      const size_t bytes =
          static_cast<size_t>(RowsInBlock(block)) * ctx_.info.row_bytes;
      ctx_.pool->Prefetch(ctx_.file_id, block, bytes,
                          MakeLoader(prefetch_file_, block));
      ++ordinal;
    }
  }

  PooledReaderContext ctx_;
  std::FILE* file_;
  const int64_t begin_;  ///< immutable; the prefetch thread reads it
  int64_t position_;
  int64_t end_;
  int64_t batch_rows_;
  int64_t block_rows_;
  BufferPool::Pin pin_;
  int64_t pinned_block_ = -1;
  std::vector<std::vector<double>> numeric_;
  std::vector<std::vector<uint8_t>> boolean_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  std::FILE* prefetch_file_ = nullptr;
  std::mutex pf_mu_;
  std::condition_variable pf_cv_;
  int64_t blocks_consumed_ = 0;
  bool stop_ = false;
  std::thread prefetcher_;
};

}  // namespace

Result<std::unique_ptr<PagedFileBatchSource>> PagedFileBatchSource::Open(
    const std::string& path, int64_t batch_rows, PagedReadMode mode,
    BufferPool* pool) {
  if (batch_rows <= 0) {
    return Status::InvalidArgument("batch_rows must be positive");
  }
  Result<PagedFileInfo> info = ReadPagedFileInfo(path);
  if (!info.ok()) return info.status();
  auto source =
      std::unique_ptr<PagedFileBatchSource>(new PagedFileBatchSource());
  source->path_ = path;
  source->info_ = info.value();
  source->batch_rows_ = batch_rows;
  source->mode_ = mode;
  if (pool != nullptr) {
    Result<uint64_t> file_id = pool->RegisterFile(path);
    if (file_id.ok()) {
      source->pool_ = pool;
      source->pool_file_id_ = file_id.value();
    }
    // Registration failure (the file vanished between the header read and
    // the stat) falls back to the unpooled path; the readers will surface
    // any real I/O problem.
  }
  if (source->info_.has_zone_maps) {
    Result<ZoneMapIndex> zones = ReadZoneMapIndex(path, source->info_);
    if (!zones.ok()) return zones.status();
    source->zones_ =
        std::make_shared<const ZoneMapIndex>(std::move(zones.value()));
  }
  return source;
}

std::unique_ptr<BatchReader> PagedFileBatchSource::DoCreateReader() {
  return CreateRangeReader(0, info_.num_rows);
}

std::unique_ptr<BatchReader> PagedFileBatchSource::CreateRangeReader(
    int64_t begin, int64_t end) {
  OPTRULES_CHECK(0 <= begin && begin <= end && end <= info_.num_rows);
  std::FILE* file = std::fopen(path_.c_str(), "rb");
  OPTRULES_CHECK(file != nullptr);
  if (pool_ != nullptr) {
    PooledReaderContext ctx;
    ctx.path = path_;
    ctx.info = info_;
    ctx.pool = pool_;
    ctx.file_id = pool_file_id_;
    ctx.zones = zones_;
    ctx.prune = prune_spec();
    ctx.io_wait_accum = &io_wait_seconds_;
    ctx.hits_accum = &cache_hits_;
    ctx.misses_accum = &cache_misses_;
    ctx.skipped_accum = &pages_skipped_;
    if (info_.format_version == 2) {
      return std::make_unique<PooledV2BatchReader>(
          std::move(ctx), file, begin, end, batch_rows_, mode_);
    }
    return std::make_unique<PooledV1BatchReader>(
        std::move(ctx), file, begin, end, batch_rows_, mode_);
  }
  if (info_.format_version == 2) {
    // Seek to the page containing `begin`; the reader skips the in-page
    // prefix rows via its position arithmetic.
    const int64_t first_page =
        begin / static_cast<int64_t>(info_.rows_per_page);
    SeekToOffset(file, static_cast<uint64_t>(info_.header_bytes) +
                           static_cast<uint64_t>(first_page) *
                               info_.page_stride());
    return std::make_unique<PagedFileV2BatchReader>(
        file, info_, begin, end, batch_rows_, mode_, &io_wait_seconds_);
  }
  SeekToOffset(file, static_cast<uint64_t>(info_.header_bytes) +
                         static_cast<uint64_t>(begin) * info_.row_bytes);
  return std::make_unique<PagedFileBatchReader>(
      file, info_, begin, end, batch_rows_, mode_, &io_wait_seconds_);
}

// --------------------------------------------------------- tuple stream ----

namespace {

/// Copies TupleView rows into owned column buffers, one batch at a time.
class TupleStreamBatchReader : public BatchReader {
 public:
  TupleStreamBatchReader(TupleStream* stream, int64_t batch_rows)
      : stream_(stream), batch_rows_(batch_rows) {
    numeric_.assign(static_cast<size_t>(stream->num_numeric()),
                    std::vector<double>(static_cast<size_t>(batch_rows)));
    boolean_.assign(static_cast<size_t>(stream->num_boolean()),
                    std::vector<uint8_t>(static_cast<size_t>(batch_rows)));
  }

  bool Next(ColumnarBatch* batch) override {
    const int num_numeric = stream_->num_numeric();
    const int num_boolean = stream_->num_boolean();
    TupleView view;
    int64_t rows = 0;
    while (rows < batch_rows_ && stream_->Next(&view)) {
      for (int i = 0; i < num_numeric; ++i) {
        numeric_[static_cast<size_t>(i)][static_cast<size_t>(rows)] =
            view.numeric[i];
      }
      for (int i = 0; i < num_boolean; ++i) {
        boolean_[static_cast<size_t>(i)][static_cast<size_t>(rows)] =
            view.booleans[i];
      }
      ++rows;
    }
    if (rows == 0) return false;
    batch->Reset(num_numeric, num_boolean);
    batch->SetRows(rows);
    for (int i = 0; i < num_numeric; ++i) {
      batch->SetNumeric(i,
                        std::span<const double>(numeric_[static_cast<size_t>(i)])
                            .first(static_cast<size_t>(rows)));
    }
    for (int i = 0; i < num_boolean; ++i) {
      batch->SetBoolean(
          i, std::span<const uint8_t>(boolean_[static_cast<size_t>(i)])
                 .first(static_cast<size_t>(rows)));
    }
    return true;
  }

 private:
  TupleStream* stream_;
  int64_t batch_rows_;
  std::vector<std::vector<double>> numeric_;
  std::vector<std::vector<uint8_t>> boolean_;
};

}  // namespace

TupleStreamBatchSource::TupleStreamBatchSource(TupleStream* stream,
                                               int64_t batch_rows)
    : stream_(stream), batch_rows_(batch_rows) {
  OPTRULES_CHECK(stream != nullptr);
  OPTRULES_CHECK(batch_rows >= 1);
}

std::unique_ptr<BatchReader> TupleStreamBatchSource::DoCreateReader() {
  stream_->Reset();
  return std::make_unique<TupleStreamBatchReader>(stream_, batch_rows_);
}

}  // namespace optrules::storage
