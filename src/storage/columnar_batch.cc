#include "storage/columnar_batch.h"

#include <algorithm>
#include <cstring>

namespace optrules::storage {

void ColumnarBatch::Reset(int num_numeric, int num_boolean) {
  num_rows_ = 0;
  numeric_.assign(static_cast<size_t>(num_numeric), {});
  boolean_.assign(static_cast<size_t>(num_boolean), {});
}

void ColumnarBatch::SetRows(int64_t rows) {
  OPTRULES_CHECK(rows >= 0);
  num_rows_ = rows;
}

void ColumnarBatch::SetNumeric(int i, std::span<const double> column) {
  numeric_[static_cast<size_t>(i)] = column;
}

void ColumnarBatch::SetBoolean(int i, std::span<const uint8_t> column) {
  boolean_[static_cast<size_t>(i)] = column;
}

std::unique_ptr<BatchReader> BatchSource::CreateRangeReader(int64_t /*begin*/,
                                                            int64_t /*end*/) {
  OPTRULES_CHECK(false);  // only valid when SupportsRangeReaders()
  return nullptr;
}

// ----------------------------------------------------------- relation ----

namespace {

/// Serves [begin, end) of a relation as zero-copy column subspans.
class RelationBatchReader : public BatchReader {
 public:
  RelationBatchReader(const Relation* relation, int64_t begin, int64_t end,
                      int64_t batch_rows)
      : relation_(relation),
        position_(begin),
        end_(end),
        batch_rows_(batch_rows) {}

  bool Next(ColumnarBatch* batch) override {
    if (position_ >= end_) return false;
    const int64_t rows = std::min(batch_rows_, end_ - position_);
    const Schema& schema = relation_->schema();
    batch->Reset(schema.num_numeric(), schema.num_boolean());
    batch->SetRows(rows);
    const auto offset = static_cast<size_t>(position_);
    const auto count = static_cast<size_t>(rows);
    for (int i = 0; i < schema.num_numeric(); ++i) {
      batch->SetNumeric(
          i, std::span<const double>(relation_->NumericColumn(i))
                 .subspan(offset, count));
    }
    for (int i = 0; i < schema.num_boolean(); ++i) {
      batch->SetBoolean(
          i, std::span<const uint8_t>(relation_->BooleanColumn(i))
                 .subspan(offset, count));
    }
    position_ += rows;
    return true;
  }

 private:
  const Relation* relation_;
  int64_t position_;
  int64_t end_;
  int64_t batch_rows_;
};

}  // namespace

RelationBatchSource::RelationBatchSource(const Relation* relation,
                                         int64_t batch_rows)
    : relation_(relation), batch_rows_(batch_rows) {
  OPTRULES_CHECK(relation != nullptr);
  OPTRULES_CHECK(batch_rows >= 1);
}

int RelationBatchSource::num_numeric() const {
  return relation_->schema().num_numeric();
}

int RelationBatchSource::num_boolean() const {
  return relation_->schema().num_boolean();
}

int64_t RelationBatchSource::NumTuples() const {
  return relation_->NumRows();
}

std::unique_ptr<BatchReader> RelationBatchSource::DoCreateReader() {
  return std::make_unique<RelationBatchReader>(relation_, 0,
                                               relation_->NumRows(),
                                               batch_rows_);
}

std::unique_ptr<BatchReader> RelationBatchSource::CreateRangeReader(
    int64_t begin, int64_t end) {
  OPTRULES_CHECK(0 <= begin && begin <= end && end <= relation_->NumRows());
  return std::make_unique<RelationBatchReader>(relation_, begin, end,
                                               batch_rows_);
}

// ---------------------------------------------------------- paged file ----

namespace {

/// Reads fixed-width rows page-wise and transposes them into owned column
/// buffers. Each reader has its own FILE handle, so sharded readers can
/// stream concurrently.
class PagedFileBatchReader : public BatchReader {
 public:
  PagedFileBatchReader(std::FILE* file, const PagedFileInfo& info,
                       int64_t begin, int64_t end, int64_t batch_rows)
      : file_(file),
        info_(info),
        position_(begin),
        end_(end),
        batch_rows_(batch_rows) {
    page_.resize(static_cast<size_t>(batch_rows) * info_.row_bytes);
    numeric_.assign(static_cast<size_t>(info_.num_numeric),
                    std::vector<double>(static_cast<size_t>(batch_rows)));
    boolean_.assign(static_cast<size_t>(info_.num_boolean),
                    std::vector<uint8_t>(static_cast<size_t>(batch_rows)));
  }

  ~PagedFileBatchReader() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  bool Next(ColumnarBatch* batch) override {
    if (position_ >= end_) return false;
    const int64_t want = std::min(batch_rows_, end_ - position_);
    const size_t got = std::fread(page_.data(), info_.row_bytes,
                                  static_cast<size_t>(want), file_);
    // end_ is bounded by the header's row count, so a short read means a
    // truncated or failing file; silently accepting it would merge
    // partial counts with no diagnostic.
    OPTRULES_CHECK(got == static_cast<size_t>(want));
    const auto rows = static_cast<int64_t>(got);
    // Transpose the row-major page into the column buffers.
    const size_t boolean_offset =
        static_cast<size_t>(info_.num_numeric) * sizeof(double);
    for (int64_t r = 0; r < rows; ++r) {
      const uint8_t* row =
          page_.data() + static_cast<size_t>(r) * info_.row_bytes;
      for (int i = 0; i < info_.num_numeric; ++i) {
        std::memcpy(&numeric_[static_cast<size_t>(i)][static_cast<size_t>(r)],
                    row + static_cast<size_t>(i) * sizeof(double),
                    sizeof(double));
      }
      for (int i = 0; i < info_.num_boolean; ++i) {
        boolean_[static_cast<size_t>(i)][static_cast<size_t>(r)] =
            row[boolean_offset + static_cast<size_t>(i)];
      }
    }
    batch->Reset(info_.num_numeric, info_.num_boolean);
    batch->SetRows(rows);
    for (int i = 0; i < info_.num_numeric; ++i) {
      batch->SetNumeric(i,
                        std::span<const double>(numeric_[static_cast<size_t>(i)])
                            .first(static_cast<size_t>(rows)));
    }
    for (int i = 0; i < info_.num_boolean; ++i) {
      batch->SetBoolean(
          i, std::span<const uint8_t>(boolean_[static_cast<size_t>(i)])
                 .first(static_cast<size_t>(rows)));
    }
    position_ += rows;
    return true;
  }

 private:
  std::FILE* file_;
  PagedFileInfo info_;
  int64_t position_;
  int64_t end_;
  int64_t batch_rows_;
  std::vector<uint8_t> page_;
  std::vector<std::vector<double>> numeric_;
  std::vector<std::vector<uint8_t>> boolean_;
};

}  // namespace

Result<std::unique_ptr<PagedFileBatchSource>> PagedFileBatchSource::Open(
    const std::string& path, int64_t batch_rows) {
  if (batch_rows <= 0) {
    return Status::InvalidArgument("batch_rows must be positive");
  }
  Result<PagedFileInfo> info = ReadPagedFileInfo(path);
  if (!info.ok()) return info.status();
  auto source =
      std::unique_ptr<PagedFileBatchSource>(new PagedFileBatchSource());
  source->path_ = path;
  source->info_ = info.value();
  source->batch_rows_ = batch_rows;
  return source;
}

std::unique_ptr<BatchReader> PagedFileBatchSource::DoCreateReader() {
  return CreateRangeReader(0, info_.num_rows);
}

namespace {

/// Seeks to an absolute byte offset in chunks that fit a 32-bit long, so
/// shard offsets in files beyond 2 GiB work on every platform (plain
/// fseek takes a long, which is 32 bits on some targets).
void SeekToOffset(std::FILE* file, uint64_t offset) {
  OPTRULES_CHECK(std::fseek(file, 0, SEEK_SET) == 0);
  constexpr uint64_t kChunk = 1u << 30;
  while (offset > 0) {
    const uint64_t step = std::min(offset, kChunk);
    OPTRULES_CHECK(std::fseek(file, static_cast<long>(step), SEEK_CUR) == 0);
    offset -= step;
  }
}

}  // namespace

std::unique_ptr<BatchReader> PagedFileBatchSource::CreateRangeReader(
    int64_t begin, int64_t end) {
  OPTRULES_CHECK(0 <= begin && begin <= end && end <= info_.num_rows);
  std::FILE* file = std::fopen(path_.c_str(), "rb");
  OPTRULES_CHECK(file != nullptr);
  SeekToOffset(file, static_cast<uint64_t>(kPagedFileHeaderBytes) +
                         static_cast<uint64_t>(begin) * info_.row_bytes);
  return std::make_unique<PagedFileBatchReader>(file, info_, begin, end,
                                                batch_rows_);
}

// --------------------------------------------------------- tuple stream ----

namespace {

/// Copies TupleView rows into owned column buffers, one batch at a time.
class TupleStreamBatchReader : public BatchReader {
 public:
  TupleStreamBatchReader(TupleStream* stream, int64_t batch_rows)
      : stream_(stream), batch_rows_(batch_rows) {
    numeric_.assign(static_cast<size_t>(stream->num_numeric()),
                    std::vector<double>(static_cast<size_t>(batch_rows)));
    boolean_.assign(static_cast<size_t>(stream->num_boolean()),
                    std::vector<uint8_t>(static_cast<size_t>(batch_rows)));
  }

  bool Next(ColumnarBatch* batch) override {
    const int num_numeric = stream_->num_numeric();
    const int num_boolean = stream_->num_boolean();
    TupleView view;
    int64_t rows = 0;
    while (rows < batch_rows_ && stream_->Next(&view)) {
      for (int i = 0; i < num_numeric; ++i) {
        numeric_[static_cast<size_t>(i)][static_cast<size_t>(rows)] =
            view.numeric[i];
      }
      for (int i = 0; i < num_boolean; ++i) {
        boolean_[static_cast<size_t>(i)][static_cast<size_t>(rows)] =
            view.booleans[i];
      }
      ++rows;
    }
    if (rows == 0) return false;
    batch->Reset(num_numeric, num_boolean);
    batch->SetRows(rows);
    for (int i = 0; i < num_numeric; ++i) {
      batch->SetNumeric(i,
                        std::span<const double>(numeric_[static_cast<size_t>(i)])
                            .first(static_cast<size_t>(rows)));
    }
    for (int i = 0; i < num_boolean; ++i) {
      batch->SetBoolean(
          i, std::span<const uint8_t>(boolean_[static_cast<size_t>(i)])
                 .first(static_cast<size_t>(rows)));
    }
    return true;
  }

 private:
  TupleStream* stream_;
  int64_t batch_rows_;
  std::vector<std::vector<double>> numeric_;
  std::vector<std::vector<uint8_t>> boolean_;
};

}  // namespace

TupleStreamBatchSource::TupleStreamBatchSource(TupleStream* stream,
                                               int64_t batch_rows)
    : stream_(stream), batch_rows_(batch_rows) {
  OPTRULES_CHECK(stream != nullptr);
  OPTRULES_CHECK(batch_rows >= 1);
}

std::unique_ptr<BatchReader> TupleStreamBatchSource::DoCreateReader() {
  stream_->Reset();
  return std::make_unique<TupleStreamBatchReader>(stream_, batch_rows_);
}

}  // namespace optrules::storage
