#include "storage/columnar_batch.h"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>

#include "common/timer.h"

namespace optrules::storage {

void ColumnarBatch::Reset(int num_numeric, int num_boolean) {
  num_rows_ = 0;
  numeric_.assign(static_cast<size_t>(num_numeric), {});
  boolean_.assign(static_cast<size_t>(num_boolean), {});
}

void ColumnarBatch::SetRows(int64_t rows) {
  OPTRULES_CHECK(rows >= 0);
  num_rows_ = rows;
}

void ColumnarBatch::SetNumeric(int i, std::span<const double> column) {
  numeric_[static_cast<size_t>(i)] = column;
}

void ColumnarBatch::SetBoolean(int i, std::span<const uint8_t> column) {
  boolean_[static_cast<size_t>(i)] = column;
}

std::unique_ptr<BatchReader> BatchSource::CreateRangeReader(int64_t /*begin*/,
                                                            int64_t /*end*/) {
  OPTRULES_CHECK(false);  // only valid when SupportsRangeReaders()
  return nullptr;
}

// ----------------------------------------------------------- relation ----

namespace {

/// Serves [begin, end) of a relation as zero-copy column subspans.
class RelationBatchReader : public BatchReader {
 public:
  RelationBatchReader(const Relation* relation, int64_t begin, int64_t end,
                      int64_t batch_rows)
      : relation_(relation),
        position_(begin),
        end_(end),
        batch_rows_(batch_rows) {}

  bool Next(ColumnarBatch* batch) override {
    if (position_ >= end_) return false;
    const int64_t rows = std::min(batch_rows_, end_ - position_);
    const Schema& schema = relation_->schema();
    batch->Reset(schema.num_numeric(), schema.num_boolean());
    batch->SetRows(rows);
    const auto offset = static_cast<size_t>(position_);
    const auto count = static_cast<size_t>(rows);
    for (int i = 0; i < schema.num_numeric(); ++i) {
      batch->SetNumeric(
          i, std::span<const double>(relation_->NumericColumn(i))
                 .subspan(offset, count));
    }
    for (int i = 0; i < schema.num_boolean(); ++i) {
      batch->SetBoolean(
          i, std::span<const uint8_t>(relation_->BooleanColumn(i))
                 .subspan(offset, count));
    }
    position_ += rows;
    return true;
  }

 private:
  const Relation* relation_;
  int64_t position_;
  int64_t end_;
  int64_t batch_rows_;
};

}  // namespace

RelationBatchSource::RelationBatchSource(const Relation* relation,
                                         int64_t batch_rows)
    : relation_(relation), batch_rows_(batch_rows) {
  OPTRULES_CHECK(relation != nullptr);
  OPTRULES_CHECK(batch_rows >= 1);
}

int RelationBatchSource::num_numeric() const {
  return relation_->schema().num_numeric();
}

int RelationBatchSource::num_boolean() const {
  return relation_->schema().num_boolean();
}

int64_t RelationBatchSource::NumTuples() const {
  return relation_->NumRows();
}

std::unique_ptr<BatchReader> RelationBatchSource::DoCreateReader() {
  return std::make_unique<RelationBatchReader>(relation_, 0,
                                               relation_->NumRows(),
                                               batch_rows_);
}

std::unique_ptr<BatchReader> RelationBatchSource::CreateRangeReader(
    int64_t begin, int64_t end) {
  OPTRULES_CHECK(0 <= begin && begin <= end && end <= relation_->NumRows());
  return std::make_unique<RelationBatchReader>(relation_, begin, end,
                                               batch_rows_);
}

// ---------------------------------------------------------- paged file ----

namespace {

/// Reads fixed-width rows page-wise and transposes them into owned column
/// buffers. Each reader has its own FILE handle, so sharded readers can
/// stream concurrently.
///
/// In kDoubleBuffered mode a per-reader prefetch thread prepares page N+1
/// (fread AND transpose, into its own slot of a two-slot ring) while the
/// caller computes over page N's columns, so the whole per-page
/// read+transpose cost overlaps with compute. The counters enforce
/// produced_ - consumed_ <= 2 with the consumer holding slot consumed_ % 2
/// and the producer filling produced_ % 2, so the threads are always in
/// disjoint slots; a consumed slot is released only on the NEXT Next()
/// call, because the batch spans handed to the caller alias the slot's
/// column buffers and must stay valid until then. Batches are
/// bit-identical across both modes.
class PagedFileBatchReader : public BatchReader {
 public:
  PagedFileBatchReader(std::FILE* file, const PagedFileInfo& info,
                       int64_t begin, int64_t end, int64_t batch_rows,
                       PagedReadMode mode, std::atomic<double>* io_wait_accum)
      : file_(file),
        info_(info),
        position_(begin),
        end_(end),
        batch_rows_(batch_rows),
        mode_(mode),
        io_wait_accum_(io_wait_accum) {
    const size_t slots =
        mode_ == PagedReadMode::kDoubleBuffered ? 2 : 1;
    slots_.resize(slots);
    for (PageSlot& slot : slots_) {
      slot.page.resize(static_cast<size_t>(batch_rows) * info_.row_bytes);
      slot.numeric.assign(
          static_cast<size_t>(info_.num_numeric),
          std::vector<double>(static_cast<size_t>(batch_rows)));
      slot.boolean.assign(
          static_cast<size_t>(info_.num_boolean),
          std::vector<uint8_t>(static_cast<size_t>(batch_rows)));
    }
    if (mode_ == PagedReadMode::kDoubleBuffered && position_ < end_) {
      prefetcher_ = std::thread([this] { PrefetchLoop(); });
    }
  }

  ~PagedFileBatchReader() override {
    if (prefetcher_.joinable()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
      }
      slot_free_cv_.notify_all();
      prefetcher_.join();
    }
    if (file_ != nullptr) std::fclose(file_);
    if (io_wait_accum_ != nullptr) {
      io_wait_accum_->fetch_add(io_wait_seconds_);
    }
  }

  bool Next(ColumnarBatch* batch) override {
    if (position_ >= end_) return false;
    const int64_t want = std::min(batch_rows_, end_ - position_);
    const PageSlot* slot = nullptr;
    if (mode_ == PagedReadMode::kDoubleBuffered) {
      {
        WallTimer wait_timer;
        std::unique_lock<std::mutex> lock(mu_);
        // Release the previously held slot (its spans die with this call)
        // and wait for the prefetcher to publish the next one.
        if (holding_slot_) {
          ++consumed_;
          slot_free_cv_.notify_all();
        }
        slot_ready_cv_.wait(lock, [&] { return produced_ > consumed_; });
        holding_slot_ = true;
        io_wait_seconds_ += wait_timer.ElapsedSeconds();
      }
      slot = &slots_[static_cast<size_t>(consumed_ % 2)];
      OPTRULES_CHECK(slot->rows == want);
    } else {
      PageSlot& mine = slots_[0];
      WallTimer read_timer;
      const size_t got = std::fread(mine.page.data(), info_.row_bytes,
                                    static_cast<size_t>(want), file_);
      io_wait_seconds_ += read_timer.ElapsedSeconds();
      // end_ is bounded by the header's row count, so a short read means a
      // truncated or failing file; silently accepting it would merge
      // partial counts with no diagnostic.
      OPTRULES_CHECK(got == static_cast<size_t>(want));
      mine.rows = want;
      Transpose(&mine);
      slot = &mine;
    }
    batch->Reset(info_.num_numeric, info_.num_boolean);
    batch->SetRows(want);
    for (int i = 0; i < info_.num_numeric; ++i) {
      batch->SetNumeric(
          i, std::span<const double>(slot->numeric[static_cast<size_t>(i)])
                 .first(static_cast<size_t>(want)));
    }
    for (int i = 0; i < info_.num_boolean; ++i) {
      batch->SetBoolean(
          i, std::span<const uint8_t>(slot->boolean[static_cast<size_t>(i)])
                 .first(static_cast<size_t>(want)));
    }
    position_ += want;
    return true;
  }

 private:
  struct PageSlot {
    std::vector<uint8_t> page;  ///< row-major staging buffer
    std::vector<std::vector<double>> numeric;
    std::vector<std::vector<uint8_t>> boolean;
    int64_t rows = 0;
  };

  /// Prefetch thread: reads and transposes every page of [begin, end)
  /// into the two-slot ring, staying at most one page ahead of the
  /// consumer.
  void PrefetchLoop() {
    int64_t remaining = end_ - position_;
    while (remaining > 0) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        slot_free_cv_.wait(
            lock, [&] { return stop_ || produced_ - consumed_ < 2; });
        if (stop_) return;
      }
      PageSlot& slot = slots_[static_cast<size_t>(produced_ % 2)];
      const int64_t want = std::min(batch_rows_, remaining);
      const size_t got = std::fread(slot.page.data(), info_.row_bytes,
                                    static_cast<size_t>(want), file_);
      // Same truncation policy as the synchronous path.
      OPTRULES_CHECK(got == static_cast<size_t>(want));
      slot.rows = want;
      Transpose(&slot);
      remaining -= want;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++produced_;
      }
      slot_ready_cv_.notify_all();
    }
  }

  /// Transposes the slot's row-major page into its column buffers.
  void Transpose(PageSlot* slot) {
    const size_t boolean_offset =
        static_cast<size_t>(info_.num_numeric) * sizeof(double);
    for (int64_t r = 0; r < slot->rows; ++r) {
      const uint8_t* row =
          slot->page.data() + static_cast<size_t>(r) * info_.row_bytes;
      for (int i = 0; i < info_.num_numeric; ++i) {
        std::memcpy(
            &slot->numeric[static_cast<size_t>(i)][static_cast<size_t>(r)],
            row + static_cast<size_t>(i) * sizeof(double), sizeof(double));
      }
      for (int i = 0; i < info_.num_boolean; ++i) {
        slot->boolean[static_cast<size_t>(i)][static_cast<size_t>(r)] =
            row[boolean_offset + static_cast<size_t>(i)];
      }
    }
  }

  std::FILE* file_;
  PagedFileInfo info_;
  int64_t position_;
  int64_t end_;
  int64_t batch_rows_;
  PagedReadMode mode_;
  // Double-buffer state. produced_/consumed_ are page counters guarded by
  // mu_; the slot contents need no lock because the counters keep the two
  // threads in disjoint slots, and the counter handoff under mu_ publishes
  // the slot contents (release/acquire via the mutex).
  std::vector<PageSlot> slots_;
  std::mutex mu_;
  std::condition_variable slot_ready_cv_;
  std::condition_variable slot_free_cv_;
  int64_t produced_ = 0;
  int64_t consumed_ = 0;
  bool holding_slot_ = false;
  bool stop_ = false;
  std::thread prefetcher_;
  std::atomic<double>* io_wait_accum_;
  double io_wait_seconds_ = 0.0;
};

/// Zero-transpose reader over a columnar v2 file. A slot holds one raw
/// on-disk page; batches are spans pointing directly into its column runs
/// (offset by the batch's position inside the page), so there is no
/// per-row work at all between fread and the counting kernels. Batches
/// clamp to page boundaries -- counting results are independent of batch
/// splits (row order is preserved), so this is invisible to consumers.
///
/// The consumer holds the slot containing its current page across multiple
/// Next() calls (batch_rows is usually much smaller than rows_per_page)
/// and releases it only when position_ crosses into the next page; the
/// double-buffered prefetch thread stays one PAGE ahead (not one batch),
/// reading raw pages with zero processing on either side of the handoff.
/// The produced_/consumed_ counter protocol is the same as the v1
/// reader's.
class PagedFileV2BatchReader : public BatchReader {
 public:
  PagedFileV2BatchReader(std::FILE* file, const PagedFileInfo& info,
                         int64_t begin, int64_t end, int64_t batch_rows,
                         PagedReadMode mode,
                         std::atomic<double>* io_wait_accum)
      : file_(file),
        info_(info),
        position_(begin),
        end_(end),
        batch_rows_(batch_rows),
        mode_(mode),
        io_wait_accum_(io_wait_accum),
        next_page_to_read_(begin /
                           static_cast<int64_t>(info.rows_per_page)) {
    OPTRULES_CHECK(info_.format_version == 2);
    const size_t slots =
        mode_ == PagedReadMode::kDoubleBuffered ? 2 : 1;
    slots_.resize(slots);
    for (PageSlot& slot : slots_) {
      slot.page.resize(info_.page_stride());
    }
    if (mode_ == PagedReadMode::kDoubleBuffered && position_ < end_) {
      prefetcher_ = std::thread([this] { PrefetchLoop(); });
    }
  }

  ~PagedFileV2BatchReader() override {
    if (prefetcher_.joinable()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
      }
      slot_free_cv_.notify_all();
      prefetcher_.join();
    }
    if (file_ != nullptr) std::fclose(file_);
    if (io_wait_accum_ != nullptr) {
      io_wait_accum_->fetch_add(io_wait_seconds_);
    }
  }

  bool Next(ColumnarBatch* batch) override {
    if (position_ >= end_) return false;
    const auto rpp = static_cast<int64_t>(info_.rows_per_page);
    const int64_t page = position_ / rpp;
    if (!holding_slot_ || held_page_ != page) AcquirePage(page);
    const PageSlot& slot = slots_[static_cast<size_t>(held_slot_)];
    const int64_t in_page = position_ - page * rpp;
    const int64_t want = std::min(
        {batch_rows_, end_ - position_, slot.rows - in_page});
    OPTRULES_CHECK(want > 0);
    const uint8_t* base = slot.page.data();
    batch->Reset(info_.num_numeric, info_.num_boolean);
    batch->SetRows(want);
    for (int c = 0; c < info_.num_numeric; ++c) {
      // The run is 8-byte aligned: the directory is padded to 8 bytes and
      // the page buffer is allocator-aligned.
      const auto* run = reinterpret_cast<const double*>(
          base + info_.numeric_run_offset(c));
      batch->SetNumeric(
          c, std::span<const double>(run + in_page,
                                     static_cast<size_t>(want)));
    }
    for (int b = 0; b < info_.num_boolean; ++b) {
      batch->SetBoolean(
          b, std::span<const uint8_t>(
                 base + info_.boolean_run_offset(b) + in_page,
                 static_cast<size_t>(want)));
    }
    position_ += want;
    return true;
  }

 private:
  struct PageSlot {
    std::vector<uint8_t> page;  ///< one raw on-disk page (page_stride bytes)
    int64_t page_index = -1;
    int64_t rows = 0;  ///< rows stored in this page (partial last page)
  };

  /// Reads the next sequential page into `slot` (the file position is
  /// always at the next unread page -- pages are consumed strictly in
  /// order). Pages are full-stride on disk even when partially filled.
  void ReadPage(PageSlot* slot) {
    WallTimer read_timer;
    const size_t got =
        std::fread(slot->page.data(), 1, slot->page.size(), file_);
    const double elapsed = read_timer.ElapsedSeconds();
    OPTRULES_CHECK(got == slot->page.size());
    slot->page_index = next_page_to_read_;
    slot->rows = info_.rows_in_page(next_page_to_read_);
    const Status valid = ValidateV2Page(info_, slot->page_index, slot->page);
    OPTRULES_CHECK(valid.ok());
    ++next_page_to_read_;
    if (mode_ == PagedReadMode::kSynchronous) {
      io_wait_seconds_ += elapsed;
    }
  }

  /// Makes `page` the held slot: releases the previous page's slot and
  /// either reads the page synchronously or waits for the prefetcher.
  void AcquirePage(int64_t page) {
    if (mode_ == PagedReadMode::kSynchronous) {
      ReadPage(&slots_[0]);
      held_slot_ = 0;
    } else {
      WallTimer wait_timer;
      std::unique_lock<std::mutex> lock(mu_);
      if (holding_slot_) {
        ++consumed_;
        slot_free_cv_.notify_all();
      }
      slot_ready_cv_.wait(lock, [&] { return produced_ > consumed_; });
      io_wait_seconds_ += wait_timer.ElapsedSeconds();
      held_slot_ = static_cast<int>(consumed_ % 2);
    }
    holding_slot_ = true;
    held_page_ = page;
    OPTRULES_CHECK(
        slots_[static_cast<size_t>(held_slot_)].page_index == page);
  }

  /// Prefetch thread: reads every page covering [begin, end) into the
  /// two-slot ring, staying at most one page ahead of the consumer.
  void PrefetchLoop() {
    const auto rpp = static_cast<int64_t>(info_.rows_per_page);
    const int64_t last_page = (end_ - 1) / rpp;
    for (int64_t page = next_page_to_read_; page <= last_page; ++page) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        slot_free_cv_.wait(
            lock, [&] { return stop_ || produced_ - consumed_ < 2; });
        if (stop_) return;
      }
      ReadPage(&slots_[static_cast<size_t>(produced_ % 2)]);
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++produced_;
      }
      slot_ready_cv_.notify_all();
    }
  }

  std::FILE* file_;
  PagedFileInfo info_;
  int64_t position_;
  int64_t end_;
  int64_t batch_rows_;
  PagedReadMode mode_;
  std::atomic<double>* io_wait_accum_;
  double io_wait_seconds_ = 0.0;
  /// Next sequential page the file position points at. Owned by the
  /// reading side: the consumer in synchronous mode, the prefetch thread
  /// in double-buffered mode (which reads its initial value before the
  /// consumer ever touches a slot).
  int64_t next_page_to_read_;
  std::vector<PageSlot> slots_;
  std::mutex mu_;
  std::condition_variable slot_ready_cv_;
  std::condition_variable slot_free_cv_;
  int64_t produced_ = 0;
  int64_t consumed_ = 0;
  bool holding_slot_ = false;
  int held_slot_ = 0;
  int64_t held_page_ = -1;
  bool stop_ = false;
  std::thread prefetcher_;
};

}  // namespace

Result<std::unique_ptr<PagedFileBatchSource>> PagedFileBatchSource::Open(
    const std::string& path, int64_t batch_rows, PagedReadMode mode) {
  if (batch_rows <= 0) {
    return Status::InvalidArgument("batch_rows must be positive");
  }
  Result<PagedFileInfo> info = ReadPagedFileInfo(path);
  if (!info.ok()) return info.status();
  auto source =
      std::unique_ptr<PagedFileBatchSource>(new PagedFileBatchSource());
  source->path_ = path;
  source->info_ = info.value();
  source->batch_rows_ = batch_rows;
  source->mode_ = mode;
  return source;
}

std::unique_ptr<BatchReader> PagedFileBatchSource::DoCreateReader() {
  return CreateRangeReader(0, info_.num_rows);
}

namespace {

/// Seeks to an absolute byte offset in chunks that fit a 32-bit long, so
/// shard offsets in files beyond 2 GiB work on every platform (plain
/// fseek takes a long, which is 32 bits on some targets).
void SeekToOffset(std::FILE* file, uint64_t offset) {
  OPTRULES_CHECK(std::fseek(file, 0, SEEK_SET) == 0);
  constexpr uint64_t kChunk = 1u << 30;
  while (offset > 0) {
    const uint64_t step = std::min(offset, kChunk);
    OPTRULES_CHECK(std::fseek(file, static_cast<long>(step), SEEK_CUR) == 0);
    offset -= step;
  }
}

}  // namespace

std::unique_ptr<BatchReader> PagedFileBatchSource::CreateRangeReader(
    int64_t begin, int64_t end) {
  OPTRULES_CHECK(0 <= begin && begin <= end && end <= info_.num_rows);
  std::FILE* file = std::fopen(path_.c_str(), "rb");
  OPTRULES_CHECK(file != nullptr);
  if (info_.format_version == 2) {
    // Seek to the page containing `begin`; the reader skips the in-page
    // prefix rows via its position arithmetic.
    const int64_t first_page =
        begin / static_cast<int64_t>(info_.rows_per_page);
    SeekToOffset(file, static_cast<uint64_t>(info_.header_bytes) +
                           static_cast<uint64_t>(first_page) *
                               info_.page_stride());
    return std::make_unique<PagedFileV2BatchReader>(
        file, info_, begin, end, batch_rows_, mode_, &io_wait_seconds_);
  }
  SeekToOffset(file, static_cast<uint64_t>(info_.header_bytes) +
                         static_cast<uint64_t>(begin) * info_.row_bytes);
  return std::make_unique<PagedFileBatchReader>(
      file, info_, begin, end, batch_rows_, mode_, &io_wait_seconds_);
}

// --------------------------------------------------------- tuple stream ----

namespace {

/// Copies TupleView rows into owned column buffers, one batch at a time.
class TupleStreamBatchReader : public BatchReader {
 public:
  TupleStreamBatchReader(TupleStream* stream, int64_t batch_rows)
      : stream_(stream), batch_rows_(batch_rows) {
    numeric_.assign(static_cast<size_t>(stream->num_numeric()),
                    std::vector<double>(static_cast<size_t>(batch_rows)));
    boolean_.assign(static_cast<size_t>(stream->num_boolean()),
                    std::vector<uint8_t>(static_cast<size_t>(batch_rows)));
  }

  bool Next(ColumnarBatch* batch) override {
    const int num_numeric = stream_->num_numeric();
    const int num_boolean = stream_->num_boolean();
    TupleView view;
    int64_t rows = 0;
    while (rows < batch_rows_ && stream_->Next(&view)) {
      for (int i = 0; i < num_numeric; ++i) {
        numeric_[static_cast<size_t>(i)][static_cast<size_t>(rows)] =
            view.numeric[i];
      }
      for (int i = 0; i < num_boolean; ++i) {
        boolean_[static_cast<size_t>(i)][static_cast<size_t>(rows)] =
            view.booleans[i];
      }
      ++rows;
    }
    if (rows == 0) return false;
    batch->Reset(num_numeric, num_boolean);
    batch->SetRows(rows);
    for (int i = 0; i < num_numeric; ++i) {
      batch->SetNumeric(i,
                        std::span<const double>(numeric_[static_cast<size_t>(i)])
                            .first(static_cast<size_t>(rows)));
    }
    for (int i = 0; i < num_boolean; ++i) {
      batch->SetBoolean(
          i, std::span<const uint8_t>(boolean_[static_cast<size_t>(i)])
                 .first(static_cast<size_t>(rows)));
    }
    return true;
  }

 private:
  TupleStream* stream_;
  int64_t batch_rows_;
  std::vector<std::vector<double>> numeric_;
  std::vector<std::vector<uint8_t>> boolean_;
};

}  // namespace

TupleStreamBatchSource::TupleStreamBatchSource(TupleStream* stream,
                                               int64_t batch_rows)
    : stream_(stream), batch_rows_(batch_rows) {
  OPTRULES_CHECK(stream != nullptr);
  OPTRULES_CHECK(batch_rows >= 1);
}

std::unique_ptr<BatchReader> TupleStreamBatchSource::DoCreateReader() {
  stream_->Reset();
  return std::make_unique<TupleStreamBatchReader>(stream_, batch_rows_);
}

}  // namespace optrules::storage
