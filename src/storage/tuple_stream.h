// Row-at-a-time tuple scanning over in-memory relations and PagedFiles.
//
// The bucketing pass (Algorithm 3.1 step 4) needs exactly one sequential
// scan of the data. TupleStream abstracts where the tuples live so the same
// counting code runs over an in-memory Relation and over a disk-resident
// table.

#ifndef OPTRULES_STORAGE_TUPLE_STREAM_H_
#define OPTRULES_STORAGE_TUPLE_STREAM_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/paged_file.h"
#include "storage/relation.h"

namespace optrules::storage {

/// Borrowed view of one tuple; pointers are valid until the next call to
/// Next() on the producing stream.
struct TupleView {
  const double* numeric;    ///< numeric values, num_numeric() entries
  const uint8_t* booleans;  ///< boolean values (0/1), num_boolean() entries
};

/// Sequential, resettable scan over a table.
class TupleStream {
 public:
  virtual ~TupleStream() = default;

  /// Number of numeric attributes per tuple.
  virtual int num_numeric() const = 0;
  /// Number of Boolean attributes per tuple.
  virtual int num_boolean() const = 0;
  /// Total number of tuples in the table.
  virtual int64_t NumTuples() const = 0;

  /// Advances to the next tuple; returns false at end of stream.
  virtual bool Next(TupleView* view) = 0;

  /// Rewinds the stream to the first tuple.
  virtual void Reset() = 0;
};

/// TupleStream over an in-memory Relation (does not own the relation).
class RelationTupleStream : public TupleStream {
 public:
  explicit RelationTupleStream(const Relation* relation);

  int num_numeric() const override;
  int num_boolean() const override;
  int64_t NumTuples() const override;
  bool Next(TupleView* view) override;
  void Reset() override { position_ = 0; }

 private:
  const Relation* relation_;
  int64_t position_ = 0;
  std::vector<double> numeric_buffer_;
  std::vector<uint8_t> boolean_buffer_;
};

/// TupleStream over a PagedFile (either format version), reading through a
/// bounded page buffer so that scans of tables larger than memory stay
/// sequential and cheap. For columnar v2 files the buffer holds one
/// on-disk page and each tuple is gathered from the per-column runs.
class FileTupleStream : public TupleStream {
 public:
  /// Opens `path`; `buffer_rows` tuples are read per page (v1 only -- v2
  /// reads whole on-disk pages, whose size the file header dictates).
  static Result<std::unique_ptr<FileTupleStream>> Open(
      const std::string& path, int64_t buffer_rows = 8192);

  ~FileTupleStream() override;
  FileTupleStream(const FileTupleStream&) = delete;
  FileTupleStream& operator=(const FileTupleStream&) = delete;

  int num_numeric() const override { return info_.num_numeric; }
  int num_boolean() const override { return info_.num_boolean; }
  int64_t NumTuples() const override { return info_.num_rows; }
  bool Next(TupleView* view) override;
  void Reset() override;

 private:
  FileTupleStream() = default;

  std::FILE* file_ = nullptr;
  PagedFileInfo info_;
  std::vector<uint8_t> page_;
  int64_t rows_in_page_ = 0;
  int64_t page_position_ = 0;
  int64_t rows_consumed_ = 0;
  int64_t buffer_rows_ = 0;
  std::vector<double> numeric_buffer_;
  /// v2 only: booleans are column-strided inside the page, so the view
  /// cannot alias page bytes and gets gathered here instead.
  std::vector<uint8_t> boolean_buffer_;
};

}  // namespace optrules::storage

#endif  // OPTRULES_STORAGE_TUPLE_STREAM_H_
