// In-memory columnar relation.
//
// Numeric attributes are stored as contiguous double columns and Boolean
// attributes as byte columns, which is the access pattern the bucketing and
// counting passes want: a single numeric column scanned together with one
// or more Boolean columns.

#ifndef OPTRULES_STORAGE_RELATION_H_
#define OPTRULES_STORAGE_RELATION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "storage/schema.h"

namespace optrules::storage {

/// Columnar table over a fixed Schema.
class Relation {
 public:
  Relation() = default;
  /// Creates an empty relation with the given schema.
  explicit Relation(Schema schema);

  /// The schema.
  const Schema& schema() const { return schema_; }
  /// Number of rows.
  int64_t NumRows() const { return num_rows_; }

  /// Appends one row; spans must match schema().num_numeric() /
  /// num_boolean(). Boolean values must be 0 or 1.
  void AppendRow(std::span<const double> numeric_values,
                 std::span<const uint8_t> boolean_values);

  /// Pre-allocates capacity for `rows` rows.
  void Reserve(int64_t rows);

  /// Column accessors (index is per-kind, in declaration order).
  const std::vector<double>& NumericColumn(int i) const;
  const std::vector<uint8_t>& BooleanColumn(int i) const;

  /// Mutable column access (for generators that fill columns directly).
  std::vector<double>& MutableNumericColumn(int i);
  std::vector<uint8_t>& MutableBooleanColumn(int i);

  /// Declares that columns were filled directly to `rows` rows; validates
  /// that all columns have that length.
  void SetRowCountAfterColumnFill(int64_t rows);

  /// Single-cell accessors.
  double NumericValue(int64_t row, int column) const {
    return NumericColumn(column)[static_cast<size_t>(row)];
  }
  bool BooleanValue(int64_t row, int column) const {
    return BooleanColumn(column)[static_cast<size_t>(row)] != 0;
  }

 private:
  Schema schema_;
  std::vector<std::vector<double>> numeric_columns_;
  std::vector<std::vector<uint8_t>> boolean_columns_;
  int64_t num_rows_ = 0;
};

}  // namespace optrules::storage

#endif  // OPTRULES_STORAGE_RELATION_H_
