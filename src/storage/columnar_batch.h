// Columnar batch execution core.
//
// The seed pipeline scanned tables one tuple at a time through a virtual
// TupleStream::Next() call per row; the counting kernels therefore paid a
// dispatch + copy per tuple and rescanned the table once per numeric
// attribute. ColumnarBatch moves the scan granularity to fixed-capacity
// blocks of whole columns: producers hand out batches of numeric column
// slices plus Boolean byte-column slices, and the kernels iterate tight
// span loops with one virtual call per *batch*. In-memory relations serve
// zero-copy views into their columns; disk-resident PagedFiles serve
// column slices pointing straight into the raw page image (columnar v2;
// zero transpose) or transpose each row-major page into reusable column
// buffers (legacy v1); any legacy TupleStream can be adapted. All feed the
// same hot loop (bucketing::MultiCountPlan).

#ifndef OPTRULES_STORAGE_COLUMNAR_BATCH_H_
#define OPTRULES_STORAGE_COLUMNAR_BATCH_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/paged_file.h"
#include "storage/relation.h"
#include "storage/scan_prune.h"
#include "storage/tuple_stream.h"

namespace optrules::storage {

/// Default number of rows per batch: large enough to amortize dispatch,
/// small enough that one batch of a wide table stays cache-resident.
inline constexpr int64_t kDefaultBatchRows = 4096;

/// One block of up to `capacity` rows in columnar form. The spans are
/// borrowed views owned by the producing reader; they stay valid until the
/// next Next() call on that reader (or until the reader is destroyed).
class ColumnarBatch {
 public:
  int64_t num_rows() const { return num_rows_; }
  int num_numeric() const { return static_cast<int>(numeric_.size()); }
  int num_boolean() const { return static_cast<int>(boolean_.size()); }

  /// Column slice of the i-th numeric attribute; num_rows() entries.
  std::span<const double> numeric(int i) const {
    return numeric_[static_cast<size_t>(i)];
  }
  /// Column slice of the i-th Boolean attribute (0/1 bytes).
  std::span<const uint8_t> boolean(int i) const {
    return boolean_[static_cast<size_t>(i)];
  }

  /// Producer-side assembly: resets to an empty batch with the given
  /// attribute counts.
  void Reset(int num_numeric, int num_boolean);
  /// Producer-side assembly: installs the column views for this block.
  /// Every span must have `rows` entries.
  void SetRows(int64_t rows);
  void SetNumeric(int i, std::span<const double> column);
  void SetBoolean(int i, std::span<const uint8_t> column);

 private:
  int64_t num_rows_ = 0;
  std::vector<std::span<const double>> numeric_;
  std::vector<std::span<const uint8_t>> boolean_;
};

/// One sequential scan over a table in batch granularity.
class BatchReader {
 public:
  virtual ~BatchReader() = default;

  /// Fills `batch` with the next block; returns false at end of scan (the
  /// batch contents are unspecified then). Spans installed into `batch`
  /// are invalidated by the following Next() call.
  virtual bool Next(ColumnarBatch* batch) = 0;

  /// Rows this reader skipped so far because the source's installed
  /// ScanPruneSpec proved they cannot contribute (zone-map page pruning,
  /// manifest partition pruning). The executor adds them back into the
  /// plan via MultiCountPlan::AddSkippedRows, so pruned results stay
  /// bit-identical to the unpruned reference.
  virtual int64_t pruned_rows() const { return 0; }
};

/// Cache and pruning counters of one BatchSource, accumulated across all
/// of its (destroyed) readers.
struct BatchSourceStats {
  int64_t cache_hits = 0;    ///< buffer-pool fetches served without I/O
  int64_t cache_misses = 0;  ///< buffer-pool fetches that paid a page load
  int64_t pages_skipped = 0;
  int64_t partitions_skipped = 0;
  /// Seconds readers spent blocked on file I/O (flushed per page, so the
  /// value is live even while readers are mid-scan).
  double io_wait_seconds = 0.0;
  // Fault-tolerance counters, populated only by the distributed scan
  // coordinator (zero for plain sources): partition scans re-dispatched
  // after a worker failure, worker daemons (re)spawned beyond the initial
  // roster build, and partitions served by a worker other than their
  // static owner (work-stealing / failover takeovers).
  int64_t retries = 0;
  int64_t workers_respawned = 0;
  int64_t partitions_stolen = 0;

  double cache_hit_rate() const {
    const int64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) /
                                  static_cast<double>(total);
  }
};

/// A table that can be scanned in columnar batches. Each CreateReader()
/// starts one sequential scan; the source counts scans so callers (and
/// tests) can assert how often the data was actually read.
class BatchSource {
 public:
  virtual ~BatchSource() = default;

  virtual int num_numeric() const = 0;
  virtual int num_boolean() const = 0;
  virtual int64_t NumTuples() const = 0;

  /// Starts a new scan from the first row.
  std::unique_ptr<BatchReader> CreateReader() {
    NoteScanStarted();
    return DoCreateReader();
  }

  /// True when CreateRangeReader is supported (concurrent sharded scans of
  /// disjoint row ranges, used by the parallel counting pass).
  virtual bool SupportsRangeReaders() const { return false; }

  /// Reader over rows [begin, end); only valid when SupportsRangeReaders().
  /// Does NOT count as a separate scan -- the caller accounts one scan for
  /// the whole sharded pass via NoteScanStarted().
  virtual std::unique_ptr<BatchReader> CreateRangeReader(int64_t begin,
                                                         int64_t end);

  /// Number of scans started over this source so far.
  int64_t scans_started() const { return scans_started_; }

  /// Accounts one logical scan (CreateReader does this automatically;
  /// sharded passes call it once for the whole pass).
  void NoteScanStarted() { ++scans_started_; }

  /// Installs (or clears, with nullptr) the prune requirements of the scan
  /// about to run; readers created while a spec is installed may skip
  /// provably non-contributing pages/partitions (they account the rows via
  /// pruned_rows()). Install BEFORE creating readers and clear after the
  /// last reader died -- the spec is not synchronized against concurrent
  /// readers. Sources without page/partition stats simply ignore it.
  void InstallPruneSpec(std::shared_ptr<const ScanPruneSpec> spec) {
    prune_spec_ = std::move(spec);
  }
  const std::shared_ptr<const ScanPruneSpec>& prune_spec() const {
    return prune_spec_;
  }

  /// Cache/pruning counters accumulated by this source's readers (complete
  /// once the readers are destroyed). Zero for purely in-memory sources.
  virtual BatchSourceStats SourceStats() const { return {}; }

 protected:
  virtual std::unique_ptr<BatchReader> DoCreateReader() = 0;

 private:
  int64_t scans_started_ = 0;
  std::shared_ptr<const ScanPruneSpec> prune_spec_;
};

/// Zero-copy batch source over an in-memory Relation: batches are subspans
/// of the relation's columns (no per-row work at all). Supports sharded
/// range readers, so parallel counting partitions rows across the pool.
class RelationBatchSource : public BatchSource {
 public:
  explicit RelationBatchSource(const Relation* relation,
                               int64_t batch_rows = kDefaultBatchRows);

  int num_numeric() const override;
  int num_boolean() const override;
  int64_t NumTuples() const override;
  bool SupportsRangeReaders() const override { return true; }
  std::unique_ptr<BatchReader> CreateRangeReader(int64_t begin,
                                                 int64_t end) override;

  const Relation* relation() const { return relation_; }

 protected:
  std::unique_ptr<BatchReader> DoCreateReader() override;

 private:
  const Relation* relation_;
  int64_t batch_rows_;
};

/// How PagedFileBatchSource readers overlap I/O with compute.
enum class PagedReadMode {
  /// A dedicated prefetch thread per reader reads page N+1 while the
  /// caller transposes page N (double-buffered; the default). The thread
  /// is per-reader rather than a shared-pool task on purpose: row-sharded
  /// scans occupy every pool worker with readers that BLOCK on their next
  /// page, so prefetches queued behind them on the same pool would
  /// deadlock.
  kDoubleBuffered,
  /// Synchronous fread on the calling thread (the reference behavior;
  /// batches are bit-identical to kDoubleBuffered).
  kSynchronous,
};

/// Batch source over a PagedFile: each reader owns its own file handle and
/// streams `batch_rows`-row batches. Readers must be destroyed before the
/// source that created them (they report their I/O-wait time into it). For columnar v2 files the batch spans
/// point directly into the reader's raw page image (zero per-row work;
/// batches additionally clamp to page boundaries). For row-major v1 files
/// each page is transposed into reusable column buffers. Supports range
/// readers (readers seek to their shard), so disk-resident counting can
/// also be sharded when the storage below tolerates concurrent sequential
/// streams.
class PagedFileBatchSource : public BatchSource {
 public:
  /// `pool` routes every page read through the shared LRU cache (readers
  /// pin the frame their spans point into); nullptr -- or a default pool
  /// disabled via OPTRULES_BUFFER_POOL_BYTES=0 -- keeps the original
  /// private-buffer read path as the bit-identical reference. Zone maps,
  /// when the file carries them, are loaded and validated here.
  static Result<std::unique_ptr<PagedFileBatchSource>> Open(
      const std::string& path, int64_t batch_rows = kDefaultBatchRows,
      PagedReadMode mode = PagedReadMode::kDoubleBuffered,
      BufferPool* pool = BufferPool::Default());

  int num_numeric() const override { return info_.num_numeric; }
  int num_boolean() const override { return info_.num_boolean; }
  int64_t NumTuples() const override { return info_.num_rows; }
  bool SupportsRangeReaders() const override { return true; }
  std::unique_ptr<BatchReader> CreateRangeReader(int64_t begin,
                                                 int64_t end) override;

  /// Header metadata of the open file (format version, page geometry).
  const PagedFileInfo& info() const { return info_; }

  /// Zone-map index of the file, or nullptr (v1, or v2 without the
  /// trailer).
  const ZoneMapIndex* zone_maps() const { return zones_.get(); }

  /// The buffer pool page reads go through (nullptr = bypass).
  BufferPool* buffer_pool() const { return pool_; }

  /// Total seconds this source's readers spent blocked on file I/O
  /// (synchronous freads, or waiting on the prefetch thread in
  /// double-buffered mode), flushed per page so long-lived readers report
  /// live values. The bench harness reports this as the scan's I/O-wait
  /// phase.
  double TotalIoWaitSeconds() const { return io_wait_seconds_.load(); }

  BatchSourceStats SourceStats() const override {
    BatchSourceStats stats;
    stats.cache_hits = cache_hits_.load();
    stats.cache_misses = cache_misses_.load();
    stats.pages_skipped = pages_skipped_.load();
    stats.io_wait_seconds = io_wait_seconds_.load();
    return stats;
  }

 protected:
  std::unique_ptr<BatchReader> DoCreateReader() override;

 private:
  PagedFileBatchSource() = default;

  std::string path_;
  PagedFileInfo info_;
  int64_t batch_rows_ = kDefaultBatchRows;
  PagedReadMode mode_ = PagedReadMode::kDoubleBuffered;
  BufferPool* pool_ = nullptr;
  uint64_t pool_file_id_ = 0;
  std::shared_ptr<const ZoneMapIndex> zones_;
  std::atomic<double> io_wait_seconds_{0.0};
  std::atomic<int64_t> cache_hits_{0};
  std::atomic<int64_t> cache_misses_{0};
  std::atomic<int64_t> pages_skipped_{0};
};

/// Adapter from any legacy TupleStream to the batch API. The stream is
/// borrowed and rewound on every CreateReader(); only one reader may be
/// active at a time (no range readers).
class TupleStreamBatchSource : public BatchSource {
 public:
  explicit TupleStreamBatchSource(TupleStream* stream,
                                  int64_t batch_rows = kDefaultBatchRows);

  int num_numeric() const override { return stream_->num_numeric(); }
  int num_boolean() const override { return stream_->num_boolean(); }
  int64_t NumTuples() const override { return stream_->NumTuples(); }

 protected:
  std::unique_ptr<BatchReader> DoCreateReader() override;

 private:
  TupleStream* stream_;
  int64_t batch_rows_;
};

}  // namespace optrules::storage

#endif  // OPTRULES_STORAGE_COLUMNAR_BATCH_H_
