#include "storage/tuple_stream.h"

#include <cstring>

namespace optrules::storage {

RelationTupleStream::RelationTupleStream(const Relation* relation)
    : relation_(relation) {
  OPTRULES_CHECK(relation != nullptr);
  numeric_buffer_.resize(
      static_cast<size_t>(relation->schema().num_numeric()));
  boolean_buffer_.resize(
      static_cast<size_t>(relation->schema().num_boolean()));
}

int RelationTupleStream::num_numeric() const {
  return relation_->schema().num_numeric();
}

int RelationTupleStream::num_boolean() const {
  return relation_->schema().num_boolean();
}

int64_t RelationTupleStream::NumTuples() const {
  return relation_->NumRows();
}

bool RelationTupleStream::Next(TupleView* view) {
  if (position_ >= relation_->NumRows()) return false;
  for (int i = 0; i < num_numeric(); ++i) {
    numeric_buffer_[static_cast<size_t>(i)] =
        relation_->NumericValue(position_, i);
  }
  for (int i = 0; i < num_boolean(); ++i) {
    boolean_buffer_[static_cast<size_t>(i)] =
        relation_->BooleanValue(position_, i) ? 1 : 0;
  }
  ++position_;
  view->numeric = numeric_buffer_.data();
  view->booleans = boolean_buffer_.data();
  return true;
}

Result<std::unique_ptr<FileTupleStream>> FileTupleStream::Open(
    const std::string& path, int64_t buffer_rows) {
  if (buffer_rows <= 0) {
    return Status::InvalidArgument("buffer_rows must be positive");
  }
  Result<PagedFileInfo> info = ReadPagedFileInfo(path);
  if (!info.ok()) return info.status();
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Status::IoError("cannot open: " + path);
  if (std::fseek(file, static_cast<long>(info.value().header_bytes),
                 SEEK_SET) != 0) {
    std::fclose(file);
    return Status::IoError("seek failed: " + path);
  }
  auto stream = std::unique_ptr<FileTupleStream>(new FileTupleStream());
  stream->file_ = file;
  stream->info_ = info.value();
  stream->buffer_rows_ = buffer_rows;
  if (stream->info_.format_version == 2) {
    stream->page_.resize(stream->info_.page_stride());
    stream->boolean_buffer_.resize(
        static_cast<size_t>(stream->info_.num_boolean));
  } else {
    stream->page_.resize(static_cast<size_t>(buffer_rows) *
                         stream->info_.row_bytes);
  }
  stream->numeric_buffer_.resize(
      static_cast<size_t>(stream->info_.num_numeric));
  return stream;
}

FileTupleStream::~FileTupleStream() {
  if (file_ != nullptr) std::fclose(file_);
}

bool FileTupleStream::Next(TupleView* view) {
  if (rows_consumed_ >= info_.num_rows) return false;
  if (info_.format_version == 2) {
    if (page_position_ >= rows_in_page_) {
      const int64_t page =
          rows_consumed_ / static_cast<int64_t>(info_.rows_per_page);
      const size_t got = std::fread(page_.data(), 1, page_.size(), file_);
      if (got != page_.size()) return false;
      const Status valid = ValidateV2Page(info_, page, page_);
      OPTRULES_CHECK(valid.ok());
      rows_in_page_ = info_.rows_in_page(page);
      page_position_ = 0;
    }
    const auto r = static_cast<size_t>(page_position_);
    for (int c = 0; c < info_.num_numeric; ++c) {
      std::memcpy(&numeric_buffer_[static_cast<size_t>(c)],
                  page_.data() + info_.numeric_run_offset(c) +
                      r * sizeof(double),
                  sizeof(double));
    }
    for (int b = 0; b < info_.num_boolean; ++b) {
      boolean_buffer_[static_cast<size_t>(b)] =
          page_[info_.boolean_run_offset(b) + r];
    }
    view->numeric = numeric_buffer_.data();
    view->booleans = boolean_buffer_.data();
    ++page_position_;
    ++rows_consumed_;
    return true;
  }
  if (page_position_ >= rows_in_page_) {
    const int64_t want =
        std::min(buffer_rows_, info_.num_rows - rows_consumed_);
    const size_t got = std::fread(
        page_.data(), info_.row_bytes, static_cast<size_t>(want), file_);
    rows_in_page_ = static_cast<int64_t>(got);
    page_position_ = 0;
    if (rows_in_page_ == 0) return false;
  }
  const uint8_t* row =
      page_.data() + static_cast<size_t>(page_position_) * info_.row_bytes;
  // Copy doubles to an aligned buffer; the boolean bytes can alias the page.
  std::memcpy(numeric_buffer_.data(), row,
              numeric_buffer_.size() * sizeof(double));
  view->numeric = numeric_buffer_.data();
  view->booleans = row + numeric_buffer_.size() * sizeof(double);
  ++page_position_;
  ++rows_consumed_;
  return true;
}

void FileTupleStream::Reset() {
  OPTRULES_CHECK(std::fseek(file_, static_cast<long>(info_.header_bytes),
                            SEEK_SET) == 0);
  rows_in_page_ = 0;
  page_position_ = 0;
  rows_consumed_ = 0;
}

}  // namespace optrules::storage
