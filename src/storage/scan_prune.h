// Content requirements that let a scan skip pages and partitions.
//
// A counting scan's channels only ever touch a row through (a) the bucket
// of a numeric column -- and every non-NaN value lands in SOME bucket, so
// the only way a column contributes nothing is to be entirely NaN -- and
// (b) Boolean condition conjunctions, which are false everywhere when any
// conjunct column has no true row. ScanPruneSpec captures exactly that:
// one Unit per counting/grid channel listing the columns whose emptiness
// kills the unit. A page (zone maps) or partition (manifest stats) whose
// stats kill EVERY unit provably contributes nothing to the scan beyond
// its row count, so the reader can skip it and account the rows into
// total_tuples afterwards -- bit-identical to having scanned it.
//
// The struct lives in storage (not bucketing) because the paged readers
// evaluate it against zone maps; bucketing derives it from a
// MultiCountSpec (DerivePruneSpec in bucketing/counting.h).

#ifndef OPTRULES_STORAGE_SCAN_PRUNE_H_
#define OPTRULES_STORAGE_SCAN_PRUNE_H_

#include <functional>
#include <vector>

namespace optrules::storage {

struct ScanPruneSpec {
  /// One channel's requirements. The unit is DEAD in a page/partition --
  /// contributes nothing beyond the row count -- iff ANY listed numeric
  /// column has no non-NaN value there, or ANY listed Boolean column has
  /// no true row there. (A 1-D channel lists its bucketed column plus its
  /// condition conjuncts; a grid channel lists both axis columns.)
  struct Unit {
    std::vector<int> numeric_columns;
    std::vector<int> boolean_true;
  };
  std::vector<Unit> units;

  bool empty() const { return units.empty(); }
};

/// True when `spec` is non-empty and every unit is dead under the given
/// per-column predicates: numeric_has_value(c) = "column c has >= 1
/// non-NaN value here", boolean_has_true(b) = "column b has >= 1 true row
/// here". Evaluated per page / per partition, so the indirection cost is
/// negligible.
inline bool AllUnitsDead(
    const ScanPruneSpec& spec,
    const std::function<bool(int)>& numeric_has_value,
    const std::function<bool(int)>& boolean_has_true) {
  if (spec.units.empty()) return false;
  for (const ScanPruneSpec::Unit& unit : spec.units) {
    bool dead = false;
    for (int c : unit.numeric_columns) {
      if (!numeric_has_value(c)) {
        dead = true;
        break;
      }
    }
    if (!dead) {
      for (int b : unit.boolean_true) {
        if (!boolean_has_true(b)) {
          dead = true;
          break;
        }
      }
    }
    if (!dead) return false;
  }
  return true;
}

}  // namespace optrules::storage

#endif  // OPTRULES_STORAGE_SCAN_PRUNE_H_
