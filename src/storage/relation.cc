#include "storage/relation.h"

namespace optrules::storage {

Relation::Relation(Schema schema) : schema_(std::move(schema)) {
  numeric_columns_.resize(static_cast<size_t>(schema_.num_numeric()));
  boolean_columns_.resize(static_cast<size_t>(schema_.num_boolean()));
}

void Relation::AppendRow(std::span<const double> numeric_values,
                         std::span<const uint8_t> boolean_values) {
  OPTRULES_CHECK(numeric_values.size() ==
                 static_cast<size_t>(schema_.num_numeric()));
  OPTRULES_CHECK(boolean_values.size() ==
                 static_cast<size_t>(schema_.num_boolean()));
  for (size_t i = 0; i < numeric_values.size(); ++i) {
    numeric_columns_[i].push_back(numeric_values[i]);
  }
  for (size_t i = 0; i < boolean_values.size(); ++i) {
    OPTRULES_DCHECK(boolean_values[i] <= 1);
    boolean_columns_[i].push_back(boolean_values[i]);
  }
  ++num_rows_;
}

void Relation::Reserve(int64_t rows) {
  OPTRULES_CHECK(rows >= 0);
  for (auto& col : numeric_columns_) col.reserve(static_cast<size_t>(rows));
  for (auto& col : boolean_columns_) col.reserve(static_cast<size_t>(rows));
}

const std::vector<double>& Relation::NumericColumn(int i) const {
  OPTRULES_CHECK(0 <= i && i < schema_.num_numeric());
  return numeric_columns_[static_cast<size_t>(i)];
}

const std::vector<uint8_t>& Relation::BooleanColumn(int i) const {
  OPTRULES_CHECK(0 <= i && i < schema_.num_boolean());
  return boolean_columns_[static_cast<size_t>(i)];
}

std::vector<double>& Relation::MutableNumericColumn(int i) {
  OPTRULES_CHECK(0 <= i && i < schema_.num_numeric());
  return numeric_columns_[static_cast<size_t>(i)];
}

std::vector<uint8_t>& Relation::MutableBooleanColumn(int i) {
  OPTRULES_CHECK(0 <= i && i < schema_.num_boolean());
  return boolean_columns_[static_cast<size_t>(i)];
}

void Relation::SetRowCountAfterColumnFill(int64_t rows) {
  OPTRULES_CHECK(rows >= 0);
  for (const auto& col : numeric_columns_) {
    OPTRULES_CHECK(col.size() == static_cast<size_t>(rows));
  }
  for (const auto& col : boolean_columns_) {
    OPTRULES_CHECK(col.size() == static_cast<size_t>(rows));
  }
  num_rows_ = rows;
}

}  // namespace optrules::storage
