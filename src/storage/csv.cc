#include "storage/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace optrules::storage {

namespace {

std::vector<std::string> SplitComma(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream stream(line);
  while (std::getline(stream, field, ',')) fields.push_back(field);
  if (!line.empty() && line.back() == ',') fields.emplace_back();
  return fields;
}

}  // namespace

Status WriteCsv(const Relation& relation, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  const Schema& schema = relation.schema();
  for (int i = 0; i < schema.num_attributes(); ++i) {
    const Attribute& attr = schema.attributes()[static_cast<size_t>(i)];
    if (i > 0) out << ',';
    out << attr.name << ':' << AttrKindName(attr.kind);
  }
  out << '\n';
  out.precision(17);
  for (int64_t row = 0; row < relation.NumRows(); ++row) {
    int numeric_i = 0;
    int boolean_i = 0;
    bool first = true;
    for (const Attribute& attr : schema.attributes()) {
      if (!first) out << ',';
      first = false;
      if (attr.kind == AttrKind::kNumeric) {
        out << relation.NumericValue(row, numeric_i++);
      } else {
        out << (relation.BooleanValue(row, boolean_i++) ? 1 : 0);
      }
    }
    out << '\n';
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<Relation> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);

  std::string line;
  if (!std::getline(in, line)) {
    return Status::Corruption("empty CSV file: " + path);
  }
  std::vector<Attribute> attrs;
  for (const std::string& field : SplitComma(line)) {
    const size_t colon = field.rfind(':');
    if (colon == std::string::npos) {
      return Status::Corruption("header field without kind: " + field);
    }
    const std::string name = field.substr(0, colon);
    const std::string kind = field.substr(colon + 1);
    if (kind == "numeric") {
      attrs.push_back({name, AttrKind::kNumeric});
    } else if (kind == "boolean") {
      attrs.push_back({name, AttrKind::kBoolean});
    } else {
      return Status::Corruption("unknown attribute kind: " + kind);
    }
  }
  Result<Schema> schema = Schema::Create(std::move(attrs));
  if (!schema.ok()) return schema.status();
  Relation relation(std::move(schema).value());

  std::vector<double> numeric_row;
  std::vector<uint8_t> boolean_row;
  int64_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitComma(line);
    if (fields.size() !=
        static_cast<size_t>(relation.schema().num_attributes())) {
      return Status::Corruption("line " + std::to_string(line_number) +
                                ": expected " +
                                std::to_string(
                                    relation.schema().num_attributes()) +
                                " fields, got " +
                                std::to_string(fields.size()));
    }
    numeric_row.clear();
    boolean_row.clear();
    for (size_t i = 0; i < fields.size(); ++i) {
      const Attribute& attr = relation.schema().attributes()[i];
      const std::string& cell = fields[i];
      if (attr.kind == AttrKind::kNumeric) {
        char* end = nullptr;
        const double value = std::strtod(cell.c_str(), &end);
        if (end == cell.c_str() || *end != '\0') {
          return Status::Corruption("line " + std::to_string(line_number) +
                                    ": bad numeric cell '" + cell + "'");
        }
        numeric_row.push_back(value);
      } else {
        if (cell == "1" || cell == "yes") {
          boolean_row.push_back(1);
        } else if (cell == "0" || cell == "no") {
          boolean_row.push_back(0);
        } else {
          return Status::Corruption("line " + std::to_string(line_number) +
                                    ": bad boolean cell '" + cell + "'");
        }
      }
    }
    relation.AppendRow(numeric_row, boolean_row);
  }
  return relation;
}

}  // namespace optrules::storage
