// External merge sort over fixed-width records.
//
// Substrate for the "Naive Sort" and "Vertical Split Sort" baselines of
// Figure 9: sorting a disk-resident table by one numeric attribute under a
// bounded memory budget. Records are fixed-width byte strings compared by a
// little-endian IEEE double at a fixed offset (ties broken by memcmp of the
// whole record, making the sort deterministic).
//
// Input comes either from a file of back-to-back records (the classic
// path) or from any RecordSource -- which is how a columnar v2 table is
// sorted without first being rewritten as a row-major temporary: the
// bucketizer streams pages and packs rows straight into the run
// generator.

#ifndef OPTRULES_STORAGE_EXTERNAL_SORT_H_
#define OPTRULES_STORAGE_EXTERNAL_SORT_H_

#include <cstdint>
#include <span>
#include <string>

#include "common/status.h"

namespace optrules::storage {

/// Options controlling an external sort run.
struct ExternalSortOptions {
  size_t record_bytes = 0;      ///< width of each record (required, > 0)
  size_t key_offset = 0;        ///< byte offset of the double sort key
  size_t header_bytes = 0;      ///< input prefix copied verbatim to output
                                ///< (file-input overload only)
  size_t memory_budget_bytes = 64 << 20;  ///< max bytes sorted in memory
  std::string temp_dir = "/tmp";          ///< directory for run files
};

/// Statistics of a completed external sort.
struct ExternalSortStats {
  int64_t num_records = 0;
  int num_runs = 0;
};

/// Streams fixed-width records into the run generator.
class RecordSource {
 public:
  virtual ~RecordSource() = default;

  /// Fills `out` with up to `max_records` consecutive records (each
  /// ExternalSortOptions::record_bytes wide) and returns how many were
  /// produced; 0 means end of input.
  virtual size_t ReadRecords(uint8_t* out, size_t max_records) = 0;
};

/// Sorts the records produced by `source` into `output_path`, writing
/// `header` verbatim before the first record. Run generation + k-way
/// merge; never holds more than `memory_budget_bytes` of record data in
/// memory (options.header_bytes is ignored here -- the header is the
/// span).
Result<ExternalSortStats> ExternalSortRecords(
    RecordSource& source, const std::string& output_path,
    std::span<const uint8_t> header, const ExternalSortOptions& options);

/// Sorts `input_path` into `output_path` (both fixed-width record files
/// with an optional `options.header_bytes` header, copied verbatim).
/// Thin wrapper over ExternalSortRecords with a file-backed source.
Result<ExternalSortStats> ExternalSort(const std::string& input_path,
                                       const std::string& output_path,
                                       const ExternalSortOptions& options);

}  // namespace optrules::storage

#endif  // OPTRULES_STORAGE_EXTERNAL_SORT_H_
