// External merge sort over fixed-width records.
//
// Substrate for the "Naive Sort" and "Vertical Split Sort" baselines of
// Figure 9: sorting a disk-resident table by one numeric attribute under a
// bounded memory budget. Records are fixed-width byte strings compared by a
// little-endian IEEE double at a fixed offset (ties broken by memcmp of the
// whole record, making the sort deterministic).

#ifndef OPTRULES_STORAGE_EXTERNAL_SORT_H_
#define OPTRULES_STORAGE_EXTERNAL_SORT_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace optrules::storage {

/// Options controlling an external sort run.
struct ExternalSortOptions {
  size_t record_bytes = 0;      ///< width of each record (required, > 0)
  size_t key_offset = 0;        ///< byte offset of the double sort key
  size_t header_bytes = 0;      ///< input prefix copied verbatim to output
  size_t memory_budget_bytes = 64 << 20;  ///< max bytes sorted in memory
  std::string temp_dir = "/tmp";          ///< directory for run files
};

/// Statistics of a completed external sort.
struct ExternalSortStats {
  int64_t num_records = 0;
  int num_runs = 0;
};

/// Sorts `input_path` into `output_path` (both fixed-width record files
/// with an optional header). Uses run generation + k-way merge; never holds
/// more than `memory_budget_bytes` of record data in memory.
Result<ExternalSortStats> ExternalSort(const std::string& input_path,
                                       const std::string& output_path,
                                       const ExternalSortOptions& options);

}  // namespace optrules::storage

#endif  // OPTRULES_STORAGE_EXTERNAL_SORT_H_
