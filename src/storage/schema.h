// Relation schema: ordered attributes, each numeric (double) or Boolean.
//
// The paper's workloads mix numeric attributes (age, balance) with Boolean
// attributes (CardLoan = yes/no). The schema also fixes the on-disk
// fixed-width row layout used by storage::PagedFile: all numeric values
// first (8 bytes each, little-endian IEEE double), then one byte per
// Boolean attribute.

#ifndef OPTRULES_STORAGE_SCHEMA_H_
#define OPTRULES_STORAGE_SCHEMA_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace optrules::storage {

/// Kind of an attribute value.
enum class AttrKind : uint8_t {
  kNumeric = 0,
  kBoolean = 1,
};

/// Returns "numeric" or "boolean".
const char* AttrKindName(AttrKind kind);

/// One attribute of a relation.
struct Attribute {
  std::string name;
  AttrKind kind;
};

/// Immutable ordered attribute list with name lookup and row layout.
class Schema {
 public:
  Schema() = default;

  /// Builds a schema; attribute names must be unique and non-empty.
  static Result<Schema> Create(std::vector<Attribute> attributes);

  /// Convenience: `num_numeric` attributes named "num0..", then
  /// `num_boolean` attributes named "bool0..".
  static Schema Synthetic(int num_numeric, int num_boolean);

  /// All attributes in declaration order.
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Total attribute count.
  int num_attributes() const { return static_cast<int>(attributes_.size()); }
  /// Number of numeric attributes.
  int num_numeric() const { return num_numeric_; }
  /// Number of Boolean attributes.
  int num_boolean() const { return num_boolean_; }

  /// Index of `name` among attributes of its kind (numeric attributes are
  /// numbered 0..num_numeric-1 in declaration order, Booleans likewise), or
  /// NotFound.
  Result<int> NumericIndexOf(const std::string& name) const;
  Result<int> BooleanIndexOf(const std::string& name) const;

  /// Name of the i-th numeric / Boolean attribute.
  const std::string& NumericName(int i) const;
  const std::string& BooleanName(int i) const;

  /// Bytes per row in the fixed-width file layout.
  size_t RowBytes() const {
    return static_cast<size_t>(num_numeric_) * sizeof(double) +
           static_cast<size_t>(num_boolean_);
  }

  friend bool operator==(const Schema& a, const Schema& b);

 private:
  std::vector<Attribute> attributes_;
  std::vector<std::string> numeric_names_;
  std::vector<std::string> boolean_names_;
  std::unordered_map<std::string, int> numeric_index_;
  std::unordered_map<std::string, int> boolean_index_;
  int num_numeric_ = 0;
  int num_boolean_ = 0;
};

}  // namespace optrules::storage

#endif  // OPTRULES_STORAGE_SCHEMA_H_
