// Interestingness measures and ranking for mined rules.
//
// Confidence alone favors rules whose objective condition is common
// everywhere; these classic measures compare the rule against the
// attribute's base rate so that analysts can rank the MineAll() output.

#ifndef OPTRULES_REPORT_INTERESTINGNESS_H_
#define OPTRULES_REPORT_INTERESTINGNESS_H_

#include <vector>

#include "rules/miner.h"

namespace optrules::report {

/// Derived measures of one rule relative to the base rate of its objective
/// condition (base_rate = support(C) over the whole relation).
struct RuleMeasures {
  double lift = 0.0;        ///< confidence / base_rate
  double leverage = 0.0;    ///< support(A^C) - support(A)*support(C)
  double conviction = 0.0;  ///< (1-base_rate) / (1-confidence); inf if conf=1
  double gini_gain = 0.0;   ///< impurity reduction of the rule's partition
};

/// Computes the measures for a found rule; `base_rate` must be in [0, 1].
RuleMeasures ComputeMeasures(const rules::MinedRule& rule, double base_rate);

/// A rule paired with its measures, for ranking.
struct RankedRule {
  rules::MinedRule rule;
  RuleMeasures measures;
};

/// Ranks found rules by descending lift (ties by leverage); rules with
/// `found == false` are dropped. Base rates are measured on `relation`.
std::vector<RankedRule> RankByLift(
    const std::vector<rules::MinedRule>& mined,
    const storage::Relation& relation);

}  // namespace optrules::report

#endif  // OPTRULES_REPORT_INTERESTINGNESS_H_
