// Rule-report writers: render mined rules as Markdown or CSV so that
// MineAll() sweeps can be consumed outside the library.

#ifndef OPTRULES_REPORT_REPORT_H_
#define OPTRULES_REPORT_REPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "report/interestingness.h"

namespace optrules::report {

/// Renders ranked rules as a Markdown table (header + one row per rule).
std::string ToMarkdown(const std::vector<RankedRule>& rules);

/// Renders ranked rules as CSV with a header row.
std::string ToCsv(const std::vector<RankedRule>& rules);

/// Writes `content` to `path` (helper for the renderers above).
Status WriteTextFile(const std::string& content, const std::string& path);

}  // namespace optrules::report

#endif  // OPTRULES_REPORT_REPORT_H_
