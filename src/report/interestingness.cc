#include "report/interestingness.h"

#include <algorithm>
#include <limits>

namespace optrules::report {

RuleMeasures ComputeMeasures(const rules::MinedRule& rule,
                             double base_rate) {
  OPTRULES_CHECK(rule.found);
  OPTRULES_CHECK(0.0 <= base_rate && base_rate <= 1.0);
  RuleMeasures measures;
  measures.lift =
      base_rate > 0.0 ? rule.confidence / base_rate
                      : std::numeric_limits<double>::infinity();
  // support(A ^ C) = support(A) * confidence.
  measures.leverage =
      rule.support * rule.confidence - rule.support * base_rate;
  measures.conviction =
      rule.confidence < 1.0
          ? (1.0 - base_rate) / (1.0 - rule.confidence)
          : std::numeric_limits<double>::infinity();
  // Gini impurity reduction of splitting the data into in-range/out-range.
  const auto gini = [](double p) { return 2.0 * p * (1.0 - p); };
  const double in_weight = rule.support;
  const double out_weight = 1.0 - rule.support;
  const double out_rate =
      out_weight > 0.0
          ? (base_rate - rule.support * rule.confidence) / out_weight
          : 0.0;
  measures.gini_gain =
      gini(base_rate) - in_weight * gini(rule.confidence) -
      out_weight * gini(std::clamp(out_rate, 0.0, 1.0));
  return measures;
}

std::vector<RankedRule> RankByLift(
    const std::vector<rules::MinedRule>& mined,
    const storage::Relation& relation) {
  // Base rate per Boolean attribute, computed once.
  std::vector<double> base_rates(
      static_cast<size_t>(relation.schema().num_boolean()), 0.0);
  for (int attr = 0; attr < relation.schema().num_boolean(); ++attr) {
    const std::vector<uint8_t>& column = relation.BooleanColumn(attr);
    int64_t hits = 0;
    for (const uint8_t value : column) hits += value;
    base_rates[static_cast<size_t>(attr)] =
        relation.NumRows() > 0
            ? static_cast<double>(hits) /
                  static_cast<double>(relation.NumRows())
            : 0.0;
  }

  std::vector<RankedRule> ranked;
  for (const rules::MinedRule& rule : mined) {
    if (!rule.found) continue;
    const Result<int> attr =
        relation.schema().BooleanIndexOf(rule.boolean_attr);
    OPTRULES_CHECK(attr.ok());
    RankedRule entry;
    entry.rule = rule;
    entry.measures = ComputeMeasures(
        rule, base_rates[static_cast<size_t>(attr.value())]);
    ranked.push_back(std::move(entry));
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedRule& a, const RankedRule& b) {
              if (a.measures.lift != b.measures.lift) {
                return a.measures.lift > b.measures.lift;
              }
              return a.measures.leverage > b.measures.leverage;
            });
  return ranked;
}

}  // namespace optrules::report
