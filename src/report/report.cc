#include "report/report.h"

#include <cstdio>
#include <fstream>

namespace optrules::report {

namespace {

const char* KindName(rules::RuleKind kind) {
  return kind == rules::RuleKind::kOptimizedConfidence ? "opt-confidence"
                                                       : "opt-support";
}

std::string FormatNumber(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.4g", value);
  return buffer;
}

}  // namespace

std::string ToMarkdown(const std::vector<RankedRule>& rules) {
  std::string out =
      "| rule | kind | range | support | confidence | lift | leverage |\n"
      "|---|---|---|---|---|---|---|\n";
  for (const RankedRule& entry : rules) {
    const rules::MinedRule& rule = entry.rule;
    out += "| " + rule.numeric_attr + " => " + rule.boolean_attr;
    if (!rule.presumptive_condition.empty()) {
      out += " (given " + rule.presumptive_condition + ")";
    }
    out += " | ";
    out += KindName(rule.kind);
    out += " | [" + FormatNumber(rule.range_lo) + ", " +
           FormatNumber(rule.range_hi) + "]";
    out += " | " + FormatNumber(rule.support * 100.0) + "%";
    out += " | " + FormatNumber(rule.confidence * 100.0) + "%";
    out += " | " + FormatNumber(entry.measures.lift);
    out += " | " + FormatNumber(entry.measures.leverage);
    out += " |\n";
  }
  return out;
}

std::string ToCsv(const std::vector<RankedRule>& rules) {
  std::string out =
      "numeric_attr,boolean_attr,condition,kind,range_lo,range_hi,"
      "support,confidence,lift,leverage,conviction,gini_gain\n";
  for (const RankedRule& entry : rules) {
    const rules::MinedRule& rule = entry.rule;
    out += rule.numeric_attr + "," + rule.boolean_attr + "," +
           rule.presumptive_condition + "," + KindName(rule.kind) + "," +
           FormatNumber(rule.range_lo) + "," +
           FormatNumber(rule.range_hi) + "," + FormatNumber(rule.support) +
           "," + FormatNumber(rule.confidence) + "," +
           FormatNumber(entry.measures.lift) + "," +
           FormatNumber(entry.measures.leverage) + "," +
           FormatNumber(entry.measures.conviction) + "," +
           FormatNumber(entry.measures.gini_gain) + "\n";
  }
  return out;
}

Status WriteTextFile(const std::string& content, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << content;
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

}  // namespace optrules::report
