#include "report/report.h"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace optrules::report {

namespace {

const char* KindName(rules::RuleKind kind) {
  return kind == rules::RuleKind::kOptimizedConfidence ? "opt-confidence"
                                                       : "opt-support";
}

std::string FormatNumber(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.4g", value);
  return buffer;
}

/// Range endpoints must never render as NaN: a bucket whose only values
/// were NaN survives empty-bucket compaction (u_i > 0), so a rule spanning
/// it could otherwise leak "nan" into reports. An unknown endpoint renders
/// as the unbounded edge instead.
std::string FormatRangeLo(double value) {
  return std::isnan(value) ? "-inf" : FormatNumber(value);
}
std::string FormatRangeHi(double value) {
  return std::isnan(value) ? "inf" : FormatNumber(value);
}

}  // namespace

std::string ToMarkdown(const std::vector<RankedRule>& rules) {
  std::string out =
      "| rule | kind | range | support | confidence | lift | leverage |\n"
      "|---|---|---|---|---|---|---|\n";
  for (const RankedRule& entry : rules) {
    const rules::MinedRule& rule = entry.rule;
    out += "| " + rule.numeric_attr + " => " + rule.boolean_attr;
    if (!rule.presumptive_condition.empty()) {
      out += " (given " + rule.presumptive_condition + ")";
    }
    out += " | ";
    out += KindName(rule.kind);
    out += " | [" + FormatRangeLo(rule.range_lo) + ", " +
           FormatRangeHi(rule.range_hi) + "]";
    out += " | " + FormatNumber(rule.support * 100.0) + "%";
    out += " | " + FormatNumber(rule.confidence * 100.0) + "%";
    out += " | " + FormatNumber(entry.measures.lift);
    out += " | " + FormatNumber(entry.measures.leverage);
    out += " |\n";
  }
  return out;
}

std::string ToCsv(const std::vector<RankedRule>& rules) {
  std::string out =
      "numeric_attr,boolean_attr,condition,kind,range_lo,range_hi,"
      "support,confidence,lift,leverage,conviction,gini_gain\n";
  for (const RankedRule& entry : rules) {
    const rules::MinedRule& rule = entry.rule;
    out += rule.numeric_attr + "," + rule.boolean_attr + "," +
           rule.presumptive_condition + "," + KindName(rule.kind) + "," +
           FormatRangeLo(rule.range_lo) + "," +
           FormatRangeHi(rule.range_hi) + "," + FormatNumber(rule.support) +
           "," + FormatNumber(rule.confidence) + "," +
           FormatNumber(entry.measures.lift) + "," +
           FormatNumber(entry.measures.leverage) + "," +
           FormatNumber(entry.measures.conviction) + "," +
           FormatNumber(entry.measures.gini_gain) + "\n";
  }
  return out;
}

Status WriteTextFile(const std::string& content, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << content;
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

}  // namespace optrules::report
