// Test-only fault injection for ScanWorkers.
//
// FaultInjectingScanWorker wraps any ScanWorker and fails (or delays)
// specific CountPartition calls by per-worker call ordinal, so the
// coordinator's retry / failover / respawn / deadline paths are
// exercisable deterministically WITHOUT a subprocess daemon -- the
// in-process mirror of the OPTRULES_WORKERD_FAULT hooks in
// optrules_workerd (see dist/worker_protocol.h for that grammar).
//
// Faults are one-shot, like the daemon's: a fault armed at call ordinal n
// fires on the n-th CountPartition call (0-based) and never again, so a
// retried partition succeeds on the next attempt unless another fault is
// armed for it. Tests and the bench also use the delay-only form
// (`status` ok, `delay_ms` > 0) to manufacture stragglers for the
// work-stealing and speculative-execution paths.

#ifndef OPTRULES_DIST_FAULT_INJECTION_H_
#define OPTRULES_DIST_FAULT_INJECTION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dist/scan_worker.h"

namespace optrules::dist {

/// One injected fault, keyed by the wrapper's CountPartition call ordinal.
struct InjectedFault {
  /// 0-based CountPartition call this fault fires on.
  int64_t at_call = 0;
  /// Status to return instead of scanning. An OK status means "scan
  /// normally" -- combine with delay_ms for a pure straggler.
  Status status = Status::Ok();
  /// Sleep this long before returning/scanning (straggler simulation).
  int64_t delay_ms = 0;
  /// Whether the fault also breaks the worker's transport (the analogue
  /// of a dead pipe: healthy() goes false and the coordinator must
  /// replace the worker). Ignored when `status` is OK.
  bool mark_unhealthy = false;
};

/// ScanWorker decorator that fires InjectedFaults by call ordinal and
/// otherwise forwards to the wrapped worker.
class FaultInjectingScanWorker final : public ScanWorker {
 public:
  FaultInjectingScanWorker(std::unique_ptr<ScanWorker> inner,
                           std::vector<InjectedFault> faults)
      : inner_(std::move(inner)), faults_(std::move(faults)) {}

  Result<bucketing::MultiCountPlan> CountPartition(
      const std::string& partition_path, const PartitionScanSpec& spec,
      storage::BatchSourceStats* stats) override;

  Status Ping(int64_t timeout_ms) override {
    if (!healthy_) return Status::IoError("fault-injected worker is down");
    return inner_->Ping(timeout_ms);
  }

  bool healthy() const override { return healthy_ && inner_->healthy(); }

  int64_t calls() const { return calls_; }

 private:
  std::unique_ptr<ScanWorker> inner_;
  std::vector<InjectedFault> faults_;
  int64_t calls_ = 0;
  bool healthy_ = true;
};

}  // namespace optrules::dist

#endif  // OPTRULES_DIST_FAULT_INJECTION_H_
