// Server side of the worker pipe protocol.
//
// optrules_workerd (and any in-process test harness) drives this loop:
// read a frame, run the requested partition scan, reply with the partial
// plan state, repeat until the coordinator closes the pipe or sends a
// shutdown frame. Errors while serving one request are reported as error
// frames and do NOT kill the worker -- the coordinator decides whether to
// retry elsewhere. While a scan is being served, a keepalive thread ships
// kHeartbeat frames every ~100 ms so the coordinator can tell a hung
// worker (silence) from a slow one (heartbeats but no result yet); kPing
// frames are answered with kPong immediately.
//
// Fault injection (test-only): the OPTRULES_WORKERD_FAULT environment
// variable (or RunWorkerLoop's fault_spec override) arms ONE deterministic
// fault so every coordinator failure path is exercisable from ctest:
//
//   crash-before-reply[@n]  raise(SIGKILL) while serving scan request n
//                           (0-based per daemon) -- kill -9 mid-scan
//   crash-mid-frame[@n]     write a truncated reply frame, then SIGKILL
//   garbage-frame[@n]       reply with an unparseable frame
//   error-frame[@n]         reply with an injected kError frame
//   stall:<ms>[@n]          sleep before replying, heartbeats RUNNING
//                           (a straggler: slow but provably alive)
//   hang:<ms>[@n]           sleep with heartbeats SUPPRESSED (a hang:
//                           the liveness timeout must kill this daemon)
//   rotate                  derive a sparse fault pattern from this
//                           daemon's spawn ordinal (see below)
//
// Every fault fires once (at scan request ordinal n, default 0), then
// disarms. Two auxiliary variables make multi-daemon runs deterministic:
// OPTRULES_WORKERD_FAULT_TOKEN names a file the daemon must atomically
// claim (unlink) to arm the fault -- exactly one daemon of a fleet
// faults; OPTRULES_WORKERD_FAULT_COUNTER names a counter file `rotate`
// increments under flock to get a unique spawn ordinal -- ordinals
// o % 5 == 1 arm error-frame@0, o % 5 == 3 arm crash-before-reply@0, the
// rest run clean (the check-faults ctest lane sets this up).

#ifndef OPTRULES_DIST_WORKER_PROTOCOL_H_
#define OPTRULES_DIST_WORKER_PROTOCOL_H_

namespace optrules::dist {

/// Serves scan requests from `in_fd`, writing replies to `out_fd`, until
/// clean EOF or a kShutdown frame. Returns a process exit code (0 on a
/// clean shutdown, 1 when the pipe broke mid-frame). `fault_spec`
/// overrides the OPTRULES_WORKERD_FAULT environment variable when
/// non-null (empty string = no fault).
int RunWorkerLoop(int in_fd, int out_fd, const char* fault_spec = nullptr);

}  // namespace optrules::dist

#endif  // OPTRULES_DIST_WORKER_PROTOCOL_H_
