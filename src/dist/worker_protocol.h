// Server side of the worker pipe protocol.
//
// optrules_workerd (and any in-process test harness) drives this loop:
// read a frame, run the requested partition scan, reply with the partial
// plan state, repeat until the coordinator closes the pipe or sends a
// shutdown frame. Errors while serving one request are reported as error
// frames and do NOT kill the worker -- the coordinator decides whether to
// retry elsewhere.

#ifndef OPTRULES_DIST_WORKER_PROTOCOL_H_
#define OPTRULES_DIST_WORKER_PROTOCOL_H_

namespace optrules::dist {

/// Serves scan requests from `in_fd`, writing replies to `out_fd`, until
/// clean EOF or a kShutdown frame. Returns a process exit code (0 on a
/// clean shutdown, 1 when the pipe broke mid-frame).
int RunWorkerLoop(int in_fd, int out_fd);

}  // namespace optrules::dist

#endif  // OPTRULES_DIST_WORKER_PROTOCOL_H_
