// DistributedScanCoordinator: one logical counting scan over a
// PartitionedTable.
//
// The MultiCountPlan::Merge contract already makes partial counts exact;
// what the coordinator adds is the fan-out and a DETERMINISTIC merge: it
// assigns partitions to workers (in-process threads or optrules_workerd
// subprocesses), collects one partial plan per partition, and merges them
// in fixed partition order 0..K-1. Because each worker partial is the
// serial reference chain over its partition, the merged result is a pure
// function of (table, spec): bit-identical counts/grids/min/max for any
// worker count or worker kind, and bit-identical Neumaier-compensated
// sums for any worker count (the merged sums can differ from a single
// unpartitioned file's serial chain only in the last ulp, exactly as the
// row-sharded pool schedule already documents).
//
// Fault tolerance rides on the same purity: a partition whose scan fails
// (error frame, dead pipe, crashed or hung daemon) is simply re-run -- on
// a surviving worker, or on a freshly respawned daemon when the failed
// worker's transport broke -- and every re-run produces the same bits, so
// retries, work stealing, and speculative duplicates never change the
// merged result. Scheduling decides only WHO scans a partition and WHEN;
// the merge consumes exactly one partial per live partition, in partition
// order, no matter how many attempts produced it.

#ifndef OPTRULES_DIST_COORDINATOR_H_
#define OPTRULES_DIST_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bucketing/counting.h"
#include "common/status.h"
#include "dist/partitioned_table.h"
#include "dist/scan_worker.h"

namespace optrules::dist {

/// Which worker implementation the coordinator fans out to.
enum class WorkerKind {
  kInProcess,   ///< threads in this process, one partition scan each
  kSubprocess,  ///< forked optrules_workerd daemons over pipes
};

/// How partitions are handed to worker slots.
enum class ScanScheduling {
  /// Each slot prefers its static stride (w, w+W, ...) but an idle slot
  /// steals unstarted partitions from slow peers. The default: same
  /// merged bits as kStatic, better wall clock under stragglers.
  kWorkQueue,
  /// Strict static assignment (slot w serves exactly w, w+W, ...);
  /// retried partitions still fail over to any live slot. Kept for
  /// benchmarking the stealing win and for reproducing old schedules.
  kStatic,
};

/// Fan-out parameters of a distributed scan.
struct DistributedScanOptions {
  WorkerKind worker_kind = WorkerKind::kInProcess;
  /// Concurrent worker slots; 0 = one per partition. The worker count
  /// and schedule never change results, only wall clock.
  int max_workers = 0;
  int64_t batch_rows = storage::kDefaultBatchRows;
  storage::PagedReadMode read_mode =
      storage::PagedReadMode::kDoubleBuffered;
  /// optrules_workerd binary for kSubprocess; empty = $OPTRULES_WORKERD.
  std::string workerd_path;

  ScanScheduling scheduling = ScanScheduling::kWorkQueue;
  /// Total attempts (first try + retries) a partition gets before its
  /// failure fails the scan. InvalidArgument failures are permanent and
  /// never retried; everything else -- error frames, dead pipes, corrupt
  /// frames, deadline expiries -- is presumed transient.
  int max_partition_attempts = 3;
  /// Budget of replacement workers per Execute(): how many broken-
  /// transport workers (crashed/hung daemons) may be respawned before
  /// the slot is abandoned. The scan itself fails only when no live
  /// slots remain with partitions still undone.
  int max_respawns = 8;
  /// Per-attempt reply deadline in ms; 0 = none. Grows by retry_backoff
  /// per retry of the same partition, so a deadline tuned to the common
  /// case does not starve a genuinely slow partition forever.
  int64_t partition_deadline_ms = 0;
  double retry_backoff = 2.0;
  /// Max silent gap before a subprocess worker counts as hung (daemons
  /// heartbeat every ~100 ms mid-scan); 0 = none. A hung daemon is
  /// SIGKILLed, reaped, and its partition retried.
  int64_t liveness_timeout_ms = 10'000;
  /// When the pending queue drains, idle slots may re-run the still
  /// in-flight tail partition; the first bit-exact partial wins and
  /// duplicates are discarded, so this only cuts tail latency.
  bool speculative_tail = false;
  /// Test/bench hook: when set, every worker (initial roster and
  /// respawns) comes from this factory instead of worker_kind.
  std::function<Result<std::unique_ptr<ScanWorker>>()> worker_factory;
};

/// Drives one MultiCountSpec over every partition of a table.
class DistributedScanCoordinator {
 public:
  DistributedScanCoordinator(const PartitionedTable* table,
                             DistributedScanOptions options);

  /// Fans plan->spec() out to the workers (one scan per partition, at
  /// most max_workers concurrent) and merges the partial plans into
  /// *plan in partition order. Partitions the manifest's per-partition
  /// stats prove dead under the spec's derived prune ranges are never
  /// dispatched at all; their row counts enter the plan through
  /// AddSkippedRows during the merge, so the merged result stays
  /// bit-identical to a no-pruning run. Failed partition scans are
  /// retried per DistributedScanOptions (failing workers replaced up to
  /// the respawn budget); the scan fails only when some partition
  /// exhausts its attempts or no live workers remain, and then the
  /// failed partition with the lowest index determines the returned
  /// status. On error the plan's accumulated state is unspecified.
  Status Execute(bucketing::MultiCountPlan* plan);

  /// Partition scans MERGED across all Execute() calls: one per live
  /// partition per successful scan. Pruned partitions are not counted
  /// (never scanned); failed or duplicate attempts are not counted
  /// either (tracked by scan_stats().retries instead), so this is the
  /// logical scan count, independent of fault injection.
  int64_t partition_scans() const { return partition_scans_; }

  /// Counters accumulated across all Execute() calls: cache/pruning and
  /// io-wait stats folded from per-partition worker stats (subprocess
  /// workers ship theirs back inside the kScanResult header),
  /// partitions_skipped from coordinator-side manifest pruning, plus the
  /// fault-tolerance counters retries, workers_respawned, and
  /// partitions_stolen.
  storage::BatchSourceStats scan_stats() const { return scan_stats_; }

 private:
  /// Builds one worker per options_ (factory > worker_kind).
  Result<std::unique_ptr<ScanWorker>> MakeWorker();
  /// Ensures roster_ holds `workers` live workers: full rebuild on size
  /// change, otherwise pings survivors and replaces the broken ones
  /// (replacements of previously-live workers count as respawns).
  Status RepairRoster(int workers);

  const PartitionedTable* table_;
  DistributedScanOptions options_;
  int64_t partition_scans_ = 0;
  storage::BatchSourceStats scan_stats_;
  /// Worker roster, built on first Execute() and reused by later scans
  /// (a subprocess daemon serves many requests over one pipe, so a
  /// session with supplemental scans does not re-fork per scan). After a
  /// failed Execute only the workers that actually broke are dropped;
  /// healthy daemons keep serving the next call.
  std::vector<std::unique_ptr<ScanWorker>> roster_;
};

}  // namespace optrules::dist

#endif  // OPTRULES_DIST_COORDINATOR_H_
