// DistributedScanCoordinator: one logical counting scan over a
// PartitionedTable.
//
// The MultiCountPlan::Merge contract already makes partial counts exact;
// what the coordinator adds is the fan-out and a DETERMINISTIC merge: it
// assigns partitions to workers (in-process threads or optrules_workerd
// subprocesses), collects one partial plan per partition, and merges them
// in fixed partition order 0..K-1. Because each worker partial is the
// serial reference chain over its partition, the merged result is a pure
// function of (table, spec): bit-identical counts/grids/min/max for any
// worker count or worker kind, and bit-identical Neumaier-compensated
// sums for any worker count (the merged sums can differ from a single
// unpartitioned file's serial chain only in the last ulp, exactly as the
// row-sharded pool schedule already documents).

#ifndef OPTRULES_DIST_COORDINATOR_H_
#define OPTRULES_DIST_COORDINATOR_H_

#include <cstdint>
#include <string>

#include "bucketing/counting.h"
#include "common/status.h"
#include "dist/partitioned_table.h"
#include "dist/scan_worker.h"

namespace optrules::dist {

/// Which worker implementation the coordinator fans out to.
enum class WorkerKind {
  kInProcess,   ///< threads in this process, one partition scan each
  kSubprocess,  ///< forked optrules_workerd daemons over pipes
};

/// Fan-out parameters of a distributed scan.
struct DistributedScanOptions {
  WorkerKind worker_kind = WorkerKind::kInProcess;
  /// Concurrent workers; 0 = one per partition. Worker w serves
  /// partitions w, w + W, w + 2W, ... sequentially. The worker count
  /// never changes results, only wall clock.
  int max_workers = 0;
  int64_t batch_rows = storage::kDefaultBatchRows;
  storage::PagedReadMode read_mode =
      storage::PagedReadMode::kDoubleBuffered;
  /// optrules_workerd binary for kSubprocess; empty = $OPTRULES_WORKERD.
  std::string workerd_path;
};

/// Drives one MultiCountSpec over every partition of a table.
class DistributedScanCoordinator {
 public:
  DistributedScanCoordinator(const PartitionedTable* table,
                             DistributedScanOptions options);

  /// Fans plan->spec() out to the workers (one scan per partition, at
  /// most max_workers concurrent) and merges the partial plans into
  /// *plan in partition order. Partitions the manifest's per-partition
  /// stats prove dead under the spec's derived prune ranges are never
  /// dispatched at all; their row counts enter the plan through
  /// AddSkippedRows during the merge, so the merged result stays
  /// bit-identical to a no-pruning run. On error the plan's accumulated
  /// state is unspecified; the first failing partition's status (lowest
  /// partition index) is returned.
  Status Execute(bucketing::MultiCountPlan* plan);

  /// Physical partition scans executed across all Execute() calls
  /// (pruned partitions are not counted -- they were never scanned).
  int64_t partition_scans() const { return partition_scans_; }

  /// Cache/pruning counters accumulated across all Execute() calls:
  /// partitions_skipped from coordinator-side manifest pruning, the rest
  /// folded from per-partition worker stats (subprocess workers report
  /// pages_skipped only; their buffer-pool hits stay in the daemon).
  storage::BatchSourceStats scan_stats() const { return scan_stats_; }

 private:
  const PartitionedTable* table_;
  DistributedScanOptions options_;
  int64_t partition_scans_ = 0;
  storage::BatchSourceStats scan_stats_;
  /// Worker roster, built on first Execute() and reused by later scans
  /// (a subprocess daemon serves many requests over one pipe, so a
  /// session with supplemental scans does not re-fork per scan). Dropped
  /// after a failed Execute so the next call starts from fresh workers.
  std::vector<std::unique_ptr<ScanWorker>> roster_;
};

}  // namespace optrules::dist

#endif  // OPTRULES_DIST_COORDINATOR_H_
