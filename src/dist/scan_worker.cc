#include "dist/scan_worker.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <utility>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include "bucketing/parallel_count.h"
#include "common/bytes.h"
#include "dist/wire.h"
#include "obs/metrics.h"

namespace optrules::dist {

namespace {

/// A worker that died between frames turns coordinator writes into EPIPE;
/// without this, the default SIGPIPE disposition would kill the whole
/// coordinator process instead of surfacing an IoError status.
void IgnoreSigpipeOnce() {
  static const bool ignored = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)ignored;
}

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

obs::Histogram* HeartbeatGapHistogram() {
  static obs::Histogram* const hist =
      obs::MetricsRegistry::Default().GetHistogram(
          "dist.heartbeat_gap_seconds");
  return hist;
}

/// Reaps `pid` without blocking forever: WNOHANG polling for `budget_ms`,
/// escalating through `escalate_sig` (SIGTERM, then SIGKILL) when the
/// child has not exited by the end of a budget slice. The final SIGKILL
/// wait is blocking -- after SIGKILL the child cannot run user code, so
/// the wait is bounded by kernel teardown, not by daemon behavior.
void ReapWithEscalation(pid_t pid, int64_t wnohang_budget_ms,
                        int64_t sigterm_budget_ms) {
  if (pid <= 0) return;
  int wstatus = 0;
  const auto poll_until = [&](int64_t budget_ms) {
    const int64_t deadline = NowMs() + budget_ms;
    do {
      const pid_t done = ::waitpid(pid, &wstatus, WNOHANG);
      if (done == pid || (done < 0 && errno != EINTR)) return true;
      ::usleep(5 * 1000);
    } while (NowMs() < deadline);
    return false;
  };
  if (poll_until(wnohang_budget_ms)) return;
  ::kill(pid, SIGTERM);
  if (poll_until(sigterm_budget_ms)) return;
  ::kill(pid, SIGKILL);
  while (::waitpid(pid, &wstatus, 0) < 0 && errno == EINTR) {
  }
}

}  // namespace

Result<bucketing::MultiCountPlan> InProcessScanWorker::CountPartition(
    const std::string& partition_path, const PartitionScanSpec& spec,
    storage::BatchSourceStats* stats) {
  OPTRULES_CHECK(spec.spec != nullptr);
  Result<std::unique_ptr<storage::PagedFileBatchSource>> source =
      storage::PagedFileBatchSource::Open(partition_path, spec.batch_rows,
                                          spec.read_mode);
  if (!source.ok()) return source.status();
  bucketing::MultiCountPlan plan(*spec.spec);
  // Serial reference chain (see the header): partials are a pure function
  // of (partition file, spec) -- parallelism lives across partitions.
  // (The read path below may still serve pages from the shared buffer
  // pool and prune zone-map-dead pages; both are invisible in the
  // partial's counts.)
  bucketing::ExecuteMultiCount(*source.value(), &plan, nullptr);
  if (stats != nullptr) *stats = source.value()->SourceStats();
  return plan;
}

Result<std::unique_ptr<SubprocessScanWorker>> SubprocessScanWorker::Spawn(
    const std::string& workerd_path) {
  if (workerd_path.empty()) {
    return Status::InvalidArgument(
        "no worker daemon binary configured (set DistributedScanOptions::"
        "workerd_path or the OPTRULES_WORKERD environment variable)");
  }
  IgnoreSigpipeOnce();
  int to_child[2];    // coordinator writes -> child stdin
  int from_child[2];  // child stdout -> coordinator reads
  // O_CLOEXEC matters with several workers: without it, worker B's child
  // would inherit worker A's pipe fds, keeping A's stdout write end open
  // after A dies -- the coordinator's ReadFrame would then hang forever
  // instead of reporting the dead daemon. dup2 onto stdio below clears
  // the flag for the child's own two ends.
  if (::pipe2(to_child, O_CLOEXEC) != 0) {
    return Status::IoError("pipe2() failed");
  }
  if (::pipe2(from_child, O_CLOEXEC) != 0) {
    ::close(to_child[0]);
    ::close(to_child[1]);
    return Status::IoError("pipe2() failed");
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    for (const int fd : {to_child[0], to_child[1], from_child[0],
                         from_child[1]}) {
      ::close(fd);
    }
    return Status::IoError("fork() failed");
  }
  if (pid == 0) {
    // Child: wire the pipe pair to stdin/stdout and become the daemon.
    // If the host process runs with stdio fds closed, pipe2 may have
    // handed out fd 0/1 -- dup2 onto the same fd would be a no-op that
    // LEAVES O_CLOEXEC set, so raise the ends above stderr first. The
    // original (O_CLOEXEC) pipe fds close themselves at exec; the raised
    // duplicates alias the daemon's own stdio pipes and are harmless.
    int in_fd = to_child[0];
    int out_fd = from_child[1];
    while (in_fd >= 0 && in_fd <= STDERR_FILENO) in_fd = ::dup(in_fd);
    while (out_fd >= 0 && out_fd <= STDERR_FILENO) out_fd = ::dup(out_fd);
    if (in_fd < 0 || out_fd < 0 ||
        ::dup2(in_fd, STDIN_FILENO) < 0 ||
        ::dup2(out_fd, STDOUT_FILENO) < 0) {
      ::_exit(127);
    }
    ::execl(workerd_path.c_str(), "optrules_workerd",
            static_cast<char*>(nullptr));
    // exec failed; the parent sees EOF on its next read and reports it.
    ::_exit(127);
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  std::unique_ptr<SubprocessScanWorker> worker(new SubprocessScanWorker());
  worker->to_child_ = to_child[1];
  worker->from_child_ = from_child[0];
  worker->pid_ = pid;
  return worker;
}

SubprocessScanWorker::~SubprocessScanWorker() {
  if (to_child_ >= 0) {
    // Best-effort shutdown frame; closing the pipe alone also ends the
    // worker loop (clean EOF). Skipped on an unhealthy worker: its pipe
    // state is unknown and the write could block on a full buffer.
    if (healthy_) {
      const uint8_t shutdown[] = {
          static_cast<uint8_t>(FrameKind::kShutdown)};
      (void)WriteFrame(to_child_, shutdown);
    }
    ::close(to_child_);
    to_child_ = -1;
  }
  if (from_child_ >= 0) {
    ::close(from_child_);
    from_child_ = -1;
  }
  // WNOHANG poll first (a healthy daemon exits promptly on EOF/shutdown),
  // then SIGTERM, then SIGKILL: a wedged daemon can never hang the
  // embedding process at shutdown.
  ReapWithEscalation(pid_, /*wnohang_budget_ms=*/50,
                     /*sigterm_budget_ms=*/200);
  pid_ = -1;
}

void SubprocessScanWorker::KillNow() {
  healthy_ = false;
  if (to_child_ >= 0) {
    ::close(to_child_);
    to_child_ = -1;
  }
  if (from_child_ >= 0) {
    ::close(from_child_);
    from_child_ = -1;
  }
  if (pid_ > 0) {
    ::kill(pid_, SIGKILL);
    int wstatus = 0;
    while (::waitpid(pid_, &wstatus, 0) < 0 && errno == EINTR) {
    }
    pid_ = -1;
  }
}

Result<bucketing::MultiCountPlan> SubprocessScanWorker::CountPartition(
    const std::string& partition_path, const PartitionScanSpec& spec,
    storage::BatchSourceStats* stats) {
  OPTRULES_CHECK(spec.spec != nullptr);
  if (!healthy_) {
    return Status::IoError("subprocess worker already failed; respawn it");
  }
  std::vector<uint8_t> request;
  EncodeScanRequest(partition_path, spec.batch_rows, spec.read_mode,
                    *spec.spec, &request);
  const Status wrote = WriteFrame(to_child_, request);
  if (!wrote.ok()) {
    // EPIPE: the daemon died between requests. Reap it now.
    KillNow();
    return wrote;
  }
  const int64_t start_ms = NowMs();
  int64_t last_frame_ms = start_ms;
  std::vector<uint8_t> reply;
  for (;;) {
    FrameTimeouts timeouts;
    timeouts.liveness_ms = spec.liveness_timeout_ms;
    if (spec.deadline_ms > 0) {
      // Heartbeat frames reset the liveness clock but never the total
      // deadline: recompute the remaining budget each iteration.
      const int64_t remaining = spec.deadline_ms - (NowMs() - start_ms);
      if (remaining <= 0) {
        KillNow();
        return Status::DeadlineExceeded(
            "partition scan deadline exceeded: " + partition_path);
      }
      timeouts.total_ms = remaining;
    }
    const Status read = ReadFrameTimed(from_child_, &reply, timeouts);
    if (read.code() == StatusCode::kNotFound) {
      // Clean EOF: the daemon exited (crashed, or exec failed). Reap.
      KillNow();
      return Status::IoError("worker daemon exited before replying: " +
                             partition_path);
    }
    if (read.code() == StatusCode::kDeadlineExceeded) {
      // Hung (liveness) or over-deadline daemon: it may be wedged
      // mid-scan holding resources, so SIGKILL it immediately.
      KillNow();
      return read;
    }
    if (!read.ok()) {
      // Mid-frame EOF or I/O failure: pipe state unknown.
      KillNow();
      return read;
    }
    if (reply.empty()) {
      KillNow();
      return Status::Corruption("empty reply frame from worker");
    }
    // Observed gap between liveness signals (heartbeats or the reply
    // itself): the daemon pulses every ~100 ms, so the histogram's tail is
    // the early-warning signal for stalling workers.
    const int64_t frame_ms = NowMs();
    HeartbeatGapHistogram()->Observe(
        static_cast<double>(frame_ms - last_frame_ms) / 1e3);
    last_frame_ms = frame_ms;
    if (static_cast<FrameKind>(reply[0]) == FrameKind::kHeartbeat) {
      continue;  // mid-scan keepalive, not the reply
    }
    break;
  }
  const FrameKind kind = static_cast<FrameKind>(reply[0]);
  // A clean error frame means the daemon served the request and reported
  // a failure: the transport is intact and the worker stays healthy.
  if (kind == FrameKind::kError) return DecodeErrorFrame(reply);
  if (kind != FrameKind::kScanResult) {
    // Garbage on the reply stream: everything after this byte is suspect.
    KillNow();
    return Status::Corruption("unexpected reply frame kind from worker");
  }
  // kScanResult payload: [kind][WorkerScanStats][partial plan state].
  WorkerScanStats wire_stats;
  const Status header_read = ReadWorkerScanStats(
      std::span<const uint8_t>(reply).subspan(1), &wire_stats);
  if (!header_read.ok()) {
    KillNow();
    return header_read;
  }
  if (stats != nullptr) {
    *stats = {};
    stats->pages_skipped = static_cast<int64_t>(wire_stats.pages_skipped);
    stats->cache_hits = static_cast<int64_t>(wire_stats.cache_hits);
    stats->cache_misses = static_cast<int64_t>(wire_stats.cache_misses);
    stats->io_wait_seconds = wire_stats.io_wait_seconds;
  }
  // Rebuild the partial locally from the coordinator-side spec, then load
  // the worker's bit-exact accumulator state into it.
  bucketing::MultiCountPlan plan(*spec.spec);
  const Status loaded = plan.LoadPartialState(
      std::span<const uint8_t>(reply).subspan(1 + kWorkerScanStatsBytes));
  if (!loaded.ok()) {
    KillNow();
    return loaded;
  }
  return plan;
}

Status SubprocessScanWorker::Ping(int64_t timeout_ms) {
  if (!healthy_) {
    return Status::IoError("subprocess worker already failed");
  }
  const uint8_t ping[] = {static_cast<uint8_t>(FrameKind::kPing)};
  const Status wrote = WriteFrame(to_child_, ping);
  if (!wrote.ok()) {
    KillNow();
    return wrote;
  }
  const int64_t start_ms = NowMs();
  std::vector<uint8_t> reply;
  for (;;) {
    FrameTimeouts timeouts;
    if (timeout_ms > 0) {
      const int64_t remaining = timeout_ms - (NowMs() - start_ms);
      if (remaining <= 0) {
        KillNow();
        return Status::DeadlineExceeded("worker ping timed out");
      }
      timeouts.total_ms = remaining;
    }
    const Status read = ReadFrameTimed(from_child_, &reply, timeouts);
    if (!read.ok()) {
      KillNow();
      return read.code() == StatusCode::kNotFound
                 ? Status::IoError("worker daemon exited")
                 : read;
    }
    if (!reply.empty() &&
        static_cast<FrameKind>(reply[0]) == FrameKind::kHeartbeat) {
      continue;  // stale keepalive from an earlier scan
    }
    break;
  }
  if (reply.empty() ||
      static_cast<FrameKind>(reply[0]) != FrameKind::kPong) {
    KillNow();
    return Status::Corruption("unexpected ping reply from worker");
  }
  return Status::Ok();
}

std::string ResolveWorkerdPath(const std::string& configured) {
  if (!configured.empty()) return configured;
  const char* env = std::getenv("OPTRULES_WORKERD");
  return env != nullptr ? env : "";
}

}  // namespace optrules::dist
