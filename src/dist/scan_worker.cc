#include "dist/scan_worker.h"

#include <csignal>
#include <cstdlib>
#include <utility>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include "bucketing/parallel_count.h"
#include "common/bytes.h"
#include "dist/wire.h"

namespace optrules::dist {

namespace {

/// A worker that died between frames turns coordinator writes into EPIPE;
/// without this, the default SIGPIPE disposition would kill the whole
/// coordinator process instead of surfacing an IoError status.
void IgnoreSigpipeOnce() {
  static const bool ignored = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)ignored;
}

}  // namespace

Result<bucketing::MultiCountPlan> InProcessScanWorker::CountPartition(
    const std::string& partition_path, const PartitionScanSpec& spec,
    storage::BatchSourceStats* stats) {
  OPTRULES_CHECK(spec.spec != nullptr);
  Result<std::unique_ptr<storage::PagedFileBatchSource>> source =
      storage::PagedFileBatchSource::Open(partition_path, spec.batch_rows,
                                          spec.read_mode);
  if (!source.ok()) return source.status();
  bucketing::MultiCountPlan plan(*spec.spec);
  // Serial reference chain (see the header): partials are a pure function
  // of (partition file, spec) -- parallelism lives across partitions.
  // (The read path below may still serve pages from the shared buffer
  // pool and prune zone-map-dead pages; both are invisible in the
  // partial's counts.)
  bucketing::ExecuteMultiCount(*source.value(), &plan, nullptr);
  if (stats != nullptr) *stats = source.value()->SourceStats();
  return plan;
}

Result<std::unique_ptr<SubprocessScanWorker>> SubprocessScanWorker::Spawn(
    const std::string& workerd_path) {
  if (workerd_path.empty()) {
    return Status::InvalidArgument(
        "no worker daemon binary configured (set DistributedScanOptions::"
        "workerd_path or the OPTRULES_WORKERD environment variable)");
  }
  IgnoreSigpipeOnce();
  int to_child[2];    // coordinator writes -> child stdin
  int from_child[2];  // child stdout -> coordinator reads
  // O_CLOEXEC matters with several workers: without it, worker B's child
  // would inherit worker A's pipe fds, keeping A's stdout write end open
  // after A dies -- the coordinator's ReadFrame would then hang forever
  // instead of reporting the dead daemon. dup2 onto stdio below clears
  // the flag for the child's own two ends.
  if (::pipe2(to_child, O_CLOEXEC) != 0) {
    return Status::IoError("pipe2() failed");
  }
  if (::pipe2(from_child, O_CLOEXEC) != 0) {
    ::close(to_child[0]);
    ::close(to_child[1]);
    return Status::IoError("pipe2() failed");
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    for (const int fd : {to_child[0], to_child[1], from_child[0],
                         from_child[1]}) {
      ::close(fd);
    }
    return Status::IoError("fork() failed");
  }
  if (pid == 0) {
    // Child: wire the pipe pair to stdin/stdout and become the daemon.
    // If the host process runs with stdio fds closed, pipe2 may have
    // handed out fd 0/1 -- dup2 onto the same fd would be a no-op that
    // LEAVES O_CLOEXEC set, so raise the ends above stderr first. The
    // original (O_CLOEXEC) pipe fds close themselves at exec; the raised
    // duplicates alias the daemon's own stdio pipes and are harmless.
    int in_fd = to_child[0];
    int out_fd = from_child[1];
    while (in_fd >= 0 && in_fd <= STDERR_FILENO) in_fd = ::dup(in_fd);
    while (out_fd >= 0 && out_fd <= STDERR_FILENO) out_fd = ::dup(out_fd);
    if (in_fd < 0 || out_fd < 0 ||
        ::dup2(in_fd, STDIN_FILENO) < 0 ||
        ::dup2(out_fd, STDOUT_FILENO) < 0) {
      ::_exit(127);
    }
    ::execl(workerd_path.c_str(), "optrules_workerd",
            static_cast<char*>(nullptr));
    // exec failed; the parent sees EOF on its next read and reports it.
    ::_exit(127);
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  std::unique_ptr<SubprocessScanWorker> worker(new SubprocessScanWorker());
  worker->to_child_ = to_child[1];
  worker->from_child_ = from_child[0];
  worker->pid_ = pid;
  return worker;
}

SubprocessScanWorker::~SubprocessScanWorker() {
  if (to_child_ >= 0) {
    // Best-effort shutdown frame; closing the pipe alone also ends the
    // worker loop (clean EOF).
    const uint8_t shutdown[] = {static_cast<uint8_t>(FrameKind::kShutdown)};
    (void)WriteFrame(to_child_, shutdown);
    ::close(to_child_);
  }
  if (from_child_ >= 0) ::close(from_child_);
  if (pid_ > 0) {
    int wstatus = 0;
    (void)::waitpid(pid_, &wstatus, 0);
  }
}

Result<bucketing::MultiCountPlan> SubprocessScanWorker::CountPartition(
    const std::string& partition_path, const PartitionScanSpec& spec,
    storage::BatchSourceStats* stats) {
  OPTRULES_CHECK(spec.spec != nullptr);
  std::vector<uint8_t> request;
  EncodeScanRequest(partition_path, spec.batch_rows, spec.read_mode,
                    *spec.spec, &request);
  OPTRULES_RETURN_IF_ERROR(WriteFrame(to_child_, request));
  std::vector<uint8_t> reply;
  const Status read = ReadFrame(from_child_, &reply);
  if (read.code() == StatusCode::kNotFound) {
    return Status::IoError("worker daemon exited before replying: " +
                           partition_path);
  }
  OPTRULES_RETURN_IF_ERROR(read);
  if (reply.empty()) {
    return Status::Corruption("empty reply frame from worker");
  }
  const FrameKind kind = static_cast<FrameKind>(reply[0]);
  if (kind == FrameKind::kError) return DecodeErrorFrame(reply);
  if (kind != FrameKind::kScanResult) {
    return Status::Corruption("unexpected reply frame kind from worker");
  }
  // kScanResult payload: [kind][u64 pages_skipped][partial plan state].
  uint64_t pages_skipped = 0;
  bytes::ByteReader header(std::span<const uint8_t>(reply).subspan(1));
  OPTRULES_RETURN_IF_ERROR(header.ReadScalar(&pages_skipped));
  if (stats != nullptr) {
    *stats = {};
    stats->pages_skipped = static_cast<int64_t>(pages_skipped);
  }
  // Rebuild the partial locally from the coordinator-side spec, then load
  // the worker's bit-exact accumulator state into it.
  bucketing::MultiCountPlan plan(*spec.spec);
  OPTRULES_RETURN_IF_ERROR(plan.LoadPartialState(
      std::span<const uint8_t>(reply).subspan(1 + sizeof(uint64_t))));
  return plan;
}

std::string ResolveWorkerdPath(const std::string& configured) {
  if (!configured.empty()) return configured;
  const char* env = std::getenv("OPTRULES_WORKERD");
  return env != nullptr ? env : "";
}

}  // namespace optrules::dist
