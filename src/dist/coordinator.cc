#include "dist/coordinator.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace optrules::dist {

namespace {

/// Registry instruments of the distributed scan path, resolved once.
struct DistMetrics {
  obs::Counter* retries;
  obs::Counter* workers_respawned;
  obs::Counter* partitions_stolen;
  obs::Counter* partition_scans;
  obs::Counter* partitions_skipped;
  obs::Histogram* partition_scan_seconds;

  static const DistMetrics& Get() {
    static const DistMetrics metrics = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      return DistMetrics{reg.GetCounter("dist.retries"),
                         reg.GetCounter("dist.workers_respawned"),
                         reg.GetCounter("dist.partitions_stolen"),
                         reg.GetCounter("dist.partition_scans"),
                         reg.GetCounter("dist.partitions_skipped"),
                         reg.GetHistogram("dist.partition_scan_seconds")};
    }();
    return metrics;
  }
};

}  // namespace

DistributedScanCoordinator::DistributedScanCoordinator(
    const PartitionedTable* table, DistributedScanOptions options)
    : table_(table), options_(std::move(options)) {
  OPTRULES_CHECK(table != nullptr);
  OPTRULES_CHECK(options_.max_workers >= 0);
  OPTRULES_CHECK(options_.batch_rows >= 1);
  OPTRULES_CHECK(options_.max_partition_attempts >= 1);
  OPTRULES_CHECK(options_.max_respawns >= 0);
  OPTRULES_CHECK(options_.retry_backoff >= 1.0);
}

Result<std::unique_ptr<ScanWorker>>
DistributedScanCoordinator::MakeWorker() {
  if (options_.worker_factory) return options_.worker_factory();
  if (options_.worker_kind == WorkerKind::kInProcess) {
    return std::unique_ptr<ScanWorker>(
        std::make_unique<InProcessScanWorker>());
  }
  Result<std::unique_ptr<SubprocessScanWorker>> worker =
      SubprocessScanWorker::Spawn(ResolveWorkerdPath(options_.workerd_path));
  if (!worker.ok()) return worker.status();
  return std::unique_ptr<ScanWorker>(std::move(worker).value());
}

Status DistributedScanCoordinator::RepairRoster(int workers) {
  if (static_cast<int>(roster_.size()) != workers) {
    // Worker-count change (or first Execute): build a fresh roster.
    // Spawns can fail (missing daemon binary), so the roster is
    // completed before any scan starts.
    roster_.clear();
    roster_.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      Result<std::unique_ptr<ScanWorker>> worker = MakeWorker();
      if (!worker.ok()) {
        roster_.clear();
        return worker.status();
      }
      roster_.push_back(std::move(worker).value());
    }
    return Status::Ok();
  }
  // Reused roster: keep every worker that is still live, replace only the
  // broken ones. A daemon that died since the last Execute (or a slot a
  // failed Execute already discarded) shows up as a null/unhealthy slot
  // or a failed ping; each replacement of a previously-live worker counts
  // as a respawn.
  const int64_t ping_timeout_ms =
      options_.liveness_timeout_ms > 0 ? options_.liveness_timeout_ms
                                       : 2'000;
  for (int w = 0; w < workers; ++w) {
    std::unique_ptr<ScanWorker>& slot = roster_[static_cast<size_t>(w)];
    if (slot != nullptr && slot->healthy() &&
        slot->Ping(ping_timeout_ms).ok()) {
      continue;
    }
    Result<std::unique_ptr<ScanWorker>> worker = MakeWorker();
    if (!worker.ok()) {
      slot = nullptr;
      return worker.status();
    }
    slot = std::move(worker).value();
    ++scan_stats_.workers_respawned;
  }
  return Status::Ok();
}

Status DistributedScanCoordinator::Execute(bucketing::MultiCountPlan* plan) {
  OPTRULES_CHECK(plan != nullptr);
  const int partitions = table_->num_partitions();
  const int workers =
      options_.max_workers == 0
          ? partitions
          : std::min(options_.max_workers, partitions);

  OPTRULES_RETURN_IF_ERROR(RepairRoster(workers));

  // One physical scan = one span; the per-partition attempts below hang
  // off it as children even though they run on worker threads.
  obs::Span scan_span("dist.scan");
  scan_span.AddAttribute("partitions", static_cast<double>(partitions));
  scan_span.AddAttribute("workers", static_cast<double>(workers));
  const uint64_t scan_span_id = scan_span.id();

  PartitionScanSpec base_spec;
  base_spec.spec = &plan->spec();
  base_spec.batch_rows = options_.batch_rows;
  base_spec.read_mode = options_.read_mode;
  base_spec.liveness_timeout_ms = options_.liveness_timeout_ms;

  // Manifest pruning happens before any dispatch: a partition whose
  // per-partition stats prove it dead under the spec's derived ranges
  // contributes only its row count, which AddSkippedRows injects during
  // the merge below -- no worker, no file open, no pages.
  const storage::ScanPruneSpec prune =
      bucketing::DerivePruneSpec(plan->spec());
  std::vector<char> dead(static_cast<size_t>(partitions), 0);
  if (!prune.empty()) {
    for (int p = 0; p < partitions; ++p) {
      dead[static_cast<size_t>(p)] =
          PartitionIsDead(*table_, prune, p) ? 1 : 0;
    }
  }

  // Scheduler state, all guarded by `mu`. Results land keyed by partition
  // index and nothing merges until every live partition is done, so the
  // merge below runs strictly in partition order no matter which worker
  // (or which ATTEMPT -- retries and speculative duplicates produce the
  // same bits) finished first.
  std::mutex mu;
  std::condition_variable cv;
  std::deque<int> pending;  // claimable live partitions, index order
  std::vector<std::optional<bucketing::MultiCountPlan>> partials(
      static_cast<size_t>(partitions));
  std::vector<storage::BatchSourceStats> stats(
      static_cast<size_t>(partitions));
  std::vector<Status> errors(static_cast<size_t>(partitions));
  std::vector<int> attempts(static_cast<size_t>(partitions), 0);
  std::vector<int> inflight(static_cast<size_t>(partitions), 0);
  std::vector<char> done(static_cast<size_t>(partitions), 0);
  std::vector<char> speculated(static_cast<size_t>(partitions), 0);
  std::vector<char> slot_dead(static_cast<size_t>(workers), 0);
  int undone = 0;
  for (int p = 0; p < partitions; ++p) {
    if (dead[static_cast<size_t>(p)] != 0) continue;
    pending.push_back(p);
    ++undone;
  }
  bool failed = false;
  Status global_failure;  // set when the fleet dies, not one partition
  int respawns_left = options_.max_respawns;
  int active_workers = workers;
  int64_t retries = 0;
  int64_t respawned = 0;
  int64_t stolen = 0;

  // What slot w could run right now (mu held). Order of preference: its
  // own static stride, then -- per scheduling mode -- someone else's
  // unstarted partition (a steal) or an orphaned/retried partition, then
  // a speculative duplicate of the in-flight tail.
  enum class ClaimKind { kNone, kQueued, kSpeculative };
  struct Claim {
    ClaimKind kind = ClaimKind::kNone;
    int partition = -1;
  };
  const auto find_claim = [&](int w) -> Claim {
    for (const int p : pending) {
      if (p % workers == w) return {ClaimKind::kQueued, p};
    }
    if (options_.scheduling == ScanScheduling::kWorkQueue) {
      if (!pending.empty()) return {ClaimKind::kQueued, pending.front()};
    } else {
      // Strict static schedule: foreign partitions are claimable only as
      // failover -- retries, or stride partitions whose owner slot died.
      for (const int p : pending) {
        if (attempts[static_cast<size_t>(p)] > 0 ||
            slot_dead[static_cast<size_t>(p % workers)] != 0) {
          return {ClaimKind::kQueued, p};
        }
      }
    }
    if (options_.speculative_tail && pending.empty()) {
      for (int p = 0; p < partitions; ++p) {
        if (done[static_cast<size_t>(p)] == 0 &&
            dead[static_cast<size_t>(p)] == 0 &&
            inflight[static_cast<size_t>(p)] == 1 &&
            speculated[static_cast<size_t>(p)] == 0) {
          return {ClaimKind::kSpeculative, p};
        }
      }
    }
    return {};
  };

  const auto serve = [&](int w) {
    for (;;) {
      Claim claim;
      int attempt = 0;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] {
          return failed || undone == 0 ||
                 find_claim(w).kind != ClaimKind::kNone;
        });
        if (failed || undone == 0) return;
        claim = find_claim(w);
        const size_t p = static_cast<size_t>(claim.partition);
        if (claim.kind == ClaimKind::kQueued) {
          pending.erase(
              std::find(pending.begin(), pending.end(), claim.partition));
          if (claim.partition % workers != w && attempts[p] == 0) {
            ++stolen;
          }
        } else {
          speculated[p] = 1;
        }
        attempt = attempts[p];
        ++inflight[p];
      }

      PartitionScanSpec scan_spec = base_spec;
      if (options_.partition_deadline_ms > 0) {
        // Exponential backoff: retries of one partition get a longer
        // deadline each time, so a tuned deadline cannot starve a
        // genuinely slow partition indefinitely.
        scan_spec.deadline_ms = static_cast<int64_t>(
            static_cast<double>(options_.partition_deadline_ms) *
            std::pow(options_.retry_backoff, attempt));
      }
      storage::BatchSourceStats attempt_stats;
      WallTimer attempt_timer;
      Result<bucketing::MultiCountPlan> partial =
          [&]() -> Result<bucketing::MultiCountPlan> {
        // Worker threads have no span context; parent this attempt (and
        // any spans the in-process scan below creates) under the scan.
        obs::ScopedParent span_parent(scan_span_id);
        obs::Span partition_span("dist.partition");
        partition_span.AddAttribute(
            "partition", static_cast<double>(claim.partition));
        partition_span.AddAttribute("worker", static_cast<double>(w));
        partition_span.AddAttribute("attempt", static_cast<double>(attempt));
        return roster_[static_cast<size_t>(w)]->CountPartition(
            table_->PartitionPath(claim.partition), scan_spec,
            &attempt_stats);
      }();
      DistMetrics::Get().partition_scan_seconds->Observe(
          attempt_timer.ElapsedSeconds());

      std::unique_lock<std::mutex> lock(mu);
      const size_t p = static_cast<size_t>(claim.partition);
      --inflight[p];
      if (partial.ok()) {
        // First bit-exact partial wins; a duplicate (speculative run, or
        // a retry racing its predecessor) is identical by construction
        // and is discarded, never double-merged.
        if (done[p] == 0) {
          done[p] = 1;
          partials[p].emplace(std::move(partial).value());
          stats[p] = attempt_stats;
          --undone;
          if (undone == 0) cv.notify_all();
        }
      } else if (done[p] == 0) {
        ++attempts[p];
        errors[p] = partial.status();
        const bool retryable =
            partial.status().code() != StatusCode::kInvalidArgument;
        if (retryable && attempts[p] < options_.max_partition_attempts) {
          // Head of the queue: a wounded partition re-dispatches before
          // fresh work so its backoff clock starts immediately.
          pending.push_front(claim.partition);
          ++retries;
          cv.notify_all();
        } else if (inflight[p] == 0) {
          failed = true;
          cv.notify_all();
        }
        // else: another attempt at p is still in flight and may yet
        // succeed; its completion decides the partition's fate.
      }

      if (!roster_[static_cast<size_t>(w)]->healthy()) {
        // This slot's transport broke (daemon crashed, hung, or spoke
        // garbage). Respawn within budget; otherwise retire the slot --
        // remaining work fails over to the surviving slots.
        std::unique_ptr<ScanWorker> fresh;
        Status spawn_status;
        if (respawns_left > 0) {
          --respawns_left;
          lock.unlock();
          Result<std::unique_ptr<ScanWorker>> spawned = MakeWorker();
          lock.lock();
          if (spawned.ok()) {
            fresh = std::move(spawned).value();
          } else {
            spawn_status = spawned.status();
          }
        } else {
          spawn_status = Status::IoError(
              "worker respawn budget exhausted for this scan");
        }
        if (fresh != nullptr) {
          roster_[static_cast<size_t>(w)] = std::move(fresh);
          ++respawned;
        } else {
          slot_dead[static_cast<size_t>(w)] = 1;
          if (--active_workers == 0 && undone > 0 && !failed) {
            failed = true;
            global_failure = spawn_status;
          }
          // Static-mode peers may now claim this slot's stride.
          cv.notify_all();
          return;
        }
      }
    }
  };

  if (undone > 0) {
    if (workers == 1) {
      serve(0);
    } else {
      std::vector<std::thread> threads;
      threads.reserve(static_cast<size_t>(workers));
      for (int w = 0; w < workers; ++w) threads.emplace_back(serve, w);
      for (std::thread& thread : threads) thread.join();
    }
  }

  scan_stats_.retries += retries;
  scan_stats_.workers_respawned += respawned;
  scan_stats_.partitions_stolen += stolen;
  DistMetrics::Get().retries->Add(static_cast<uint64_t>(retries));
  DistMetrics::Get().workers_respawned->Add(static_cast<uint64_t>(respawned));
  DistMetrics::Get().partitions_stolen->Add(static_cast<uint64_t>(stolen));

  // Keep the roster, but null out any worker whose transport broke (a
  // retired slot, or a worker that went unhealthy on its final attempt):
  // the next Execute replaces exactly those, and ONLY those -- healthy
  // daemons keep serving even after a failed scan.
  for (std::unique_ptr<ScanWorker>& slot : roster_) {
    if (slot != nullptr && !slot->healthy()) slot = nullptr;
  }

  if (failed || undone > 0) {
    for (int p = 0; p < partitions; ++p) {
      if (dead[static_cast<size_t>(p)] == 0 &&
          done[static_cast<size_t>(p)] == 0 &&
          !errors[static_cast<size_t>(p)].ok()) {
        return errors[static_cast<size_t>(p)];
      }
    }
    if (!global_failure.ok()) return global_failure;
    return Status::Internal("distributed scan failed without a status");
  }

  // Deterministic merge: fixed partition order, independent of worker
  // scheduling, retries, and speculation. Pruned partitions enter as
  // pure row-count additions.
  int64_t scanned = 0;
  for (int p = 0; p < partitions; ++p) {
    if (dead[static_cast<size_t>(p)] != 0) {
      plan->AddSkippedRows(table_->partition_rows(p));
      ++scan_stats_.partitions_skipped;
      DistMetrics::Get().partitions_skipped->Add();
      continue;
    }
    plan->Merge(*partials[static_cast<size_t>(p)]);
    scan_stats_.cache_hits += stats[static_cast<size_t>(p)].cache_hits;
    scan_stats_.cache_misses += stats[static_cast<size_t>(p)].cache_misses;
    scan_stats_.pages_skipped += stats[static_cast<size_t>(p)].pages_skipped;
    scan_stats_.io_wait_seconds += stats[static_cast<size_t>(p)].io_wait_seconds;
    ++scanned;
  }
  partition_scans_ += scanned;
  DistMetrics::Get().partition_scans->Add(static_cast<uint64_t>(scanned));
  return Status::Ok();
}

}  // namespace optrules::dist
