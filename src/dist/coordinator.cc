#include "dist/coordinator.h"

#include <algorithm>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace optrules::dist {

DistributedScanCoordinator::DistributedScanCoordinator(
    const PartitionedTable* table, DistributedScanOptions options)
    : table_(table), options_(std::move(options)) {
  OPTRULES_CHECK(table != nullptr);
  OPTRULES_CHECK(options_.max_workers >= 0);
  OPTRULES_CHECK(options_.batch_rows >= 1);
}

Status DistributedScanCoordinator::Execute(bucketing::MultiCountPlan* plan) {
  OPTRULES_CHECK(plan != nullptr);
  const int partitions = table_->num_partitions();
  const int workers =
      options_.max_workers == 0
          ? partitions
          : std::min(options_.max_workers, partitions);

  // One worker per concurrent slot, built on first use and kept for the
  // coordinator's lifetime (supplemental scans reuse the same daemons).
  // Subprocess spawns can fail (missing daemon binary), so the roster is
  // completed before any scan starts.
  if (static_cast<int>(roster_.size()) != workers) {
    roster_.clear();
    roster_.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      if (options_.worker_kind == WorkerKind::kInProcess) {
        roster_.push_back(std::make_unique<InProcessScanWorker>());
      } else {
        Result<std::unique_ptr<SubprocessScanWorker>> worker =
            SubprocessScanWorker::Spawn(
                ResolveWorkerdPath(options_.workerd_path));
        if (!worker.ok()) {
          roster_.clear();
          return worker.status();
        }
        roster_.push_back(std::move(worker).value());
      }
    }
  }

  PartitionScanSpec scan_spec;
  scan_spec.spec = &plan->spec();
  scan_spec.batch_rows = options_.batch_rows;
  scan_spec.read_mode = options_.read_mode;

  // Manifest pruning happens before any dispatch: a partition whose
  // per-partition stats prove it dead under the spec's derived ranges
  // contributes only its row count, which AddSkippedRows injects during
  // the merge below -- no worker, no file open, no pages.
  const storage::ScanPruneSpec prune =
      bucketing::DerivePruneSpec(plan->spec());
  std::vector<char> dead(static_cast<size_t>(partitions), 0);
  if (!prune.empty()) {
    for (int p = 0; p < partitions; ++p) {
      dead[static_cast<size_t>(p)] =
          PartitionIsDead(*table_, prune, p) ? 1 : 0;
    }
  }

  // Static partition assignment: worker w serves partitions w, w+W, ...
  // sequentially. Each slot stores its partial (or error) and scan stats
  // by partition index; nothing is merged until every scan finished, so
  // the merge below runs strictly in partition order no matter which
  // worker finished first.
  std::vector<std::optional<bucketing::MultiCountPlan>> partials(
      static_cast<size_t>(partitions));
  std::vector<Status> errors(static_cast<size_t>(partitions));
  std::vector<storage::BatchSourceStats> stats(
      static_cast<size_t>(partitions));
  const auto serve = [&](int w) {
    for (int p = w; p < partitions; p += workers) {
      if (dead[static_cast<size_t>(p)] != 0) continue;
      Result<bucketing::MultiCountPlan> partial =
          roster_[static_cast<size_t>(w)]->CountPartition(
              table_->PartitionPath(p), scan_spec,
              &stats[static_cast<size_t>(p)]);
      if (partial.ok()) {
        partials[static_cast<size_t>(p)].emplace(
            std::move(partial).value());
      } else {
        errors[static_cast<size_t>(p)] = partial.status();
      }
    }
  };
  if (workers == 1) {
    serve(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w) threads.emplace_back(serve, w);
    for (std::thread& thread : threads) thread.join();
  }

  for (int p = 0; p < partitions; ++p) {
    if (!errors[static_cast<size_t>(p)].ok()) {
      // A failed scan may have left a daemon in an unknown pipe state;
      // drop the roster so the next Execute starts from fresh workers.
      roster_.clear();
      return errors[static_cast<size_t>(p)];
    }
  }
  // Deterministic merge: fixed partition order, independent of worker
  // scheduling. Pruned partitions enter as pure row-count additions.
  int64_t scanned = 0;
  for (int p = 0; p < partitions; ++p) {
    if (dead[static_cast<size_t>(p)] != 0) {
      plan->AddSkippedRows(table_->partition_rows(p));
      ++scan_stats_.partitions_skipped;
      continue;
    }
    plan->Merge(*partials[static_cast<size_t>(p)]);
    scan_stats_.cache_hits += stats[static_cast<size_t>(p)].cache_hits;
    scan_stats_.cache_misses += stats[static_cast<size_t>(p)].cache_misses;
    scan_stats_.pages_skipped += stats[static_cast<size_t>(p)].pages_skipped;
    ++scanned;
  }
  partition_scans_ += scanned;
  return Status::Ok();
}

}  // namespace optrules::dist
