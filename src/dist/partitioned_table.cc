#include "dist/partitioned_table.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/bytes.h"
#include "storage/csv.h"
#include "storage/paged_file.h"

namespace optrules::dist {

namespace {

/// Partition file names: part-00000.optr, part-00001.optr, ...
std::string PartitionFileName(int p) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "part-%05d.optr", p);
  return buffer;
}

/// FNV-1a over one serialized row, seeded; the kHash routing function.
uint64_t HashRowBytes(std::span<const uint8_t> row, uint64_t seed) {
  bytes::Fnv1a hash(seed);
  hash.Mix(row);
  return hash.digest();
}

}  // namespace

std::string PartitionedTable::PartitionPath(int p) const {
  OPTRULES_CHECK(0 <= p && p < num_partitions());
  return dir_ + "/" + manifest_.partitions[static_cast<size_t>(p)].file;
}

Result<PartitionedTable> PartitionedTable::Open(const std::string& dir) {
  Result<PartitionManifest> manifest = ReadManifest(dir);
  if (!manifest.ok()) return manifest.status();
  PartitionedTable table(dir, std::move(manifest).value());
  // Validate every partition header against the manifest before handing
  // the table out: a missing or truncated partition should fail at Open
  // time, not in the middle of a distributed scan.
  OPTRULES_RETURN_IF_ERROR(table.Validate());
  return table;
}

Status PartitionedTable::Validate() const {
  for (int p = 0; p < num_partitions(); ++p) {
    Result<storage::PagedFileInfo> info =
        storage::ReadPagedFileInfo(PartitionPath(p));
    if (!info.ok()) return info.status();
    if (info.value().num_numeric != schema().num_numeric() ||
        info.value().num_boolean != schema().num_boolean()) {
      return Status::Corruption("partition attribute counts disagree with "
                                "manifest: " +
                                PartitionPath(p));
    }
    if (info.value().num_rows != partition_rows(p)) {
      return Status::Corruption("partition row count disagrees with "
                                "manifest: " +
                                PartitionPath(p));
    }
  }
  return Status::Ok();
}

Result<std::unique_ptr<storage::PagedFileBatchSource>>
PartitionedTable::OpenPartition(int p, int64_t batch_rows,
                                storage::PagedReadMode mode) const {
  OPTRULES_CHECK(0 <= p && p < num_partitions());
  return storage::PagedFileBatchSource::Open(PartitionPath(p), batch_rows,
                                             mode);
}

namespace {

/// Writes the K partition files + manifest of one partitioning pass into
/// `dir` (which must exist and be empty-ish); the atomic-swap wrapper
/// below points this at a staging directory.
Status WritePartitionedTable(storage::BatchSource& source,
                             const storage::Schema& schema,
                             const std::string& dir,
                             const PartitionOptions& options) {
  const int k = options.num_partitions;
  std::vector<storage::PagedFileWriter> writers;
  writers.reserve(static_cast<size_t>(k));
  for (int p = 0; p < k; ++p) {
    Result<storage::PagedFileWriter> writer = storage::PagedFileWriter::Create(
        dir + "/" + PartitionFileName(p), schema.num_numeric(),
        schema.num_boolean());
    if (!writer.ok()) return writer.status();
    writers.push_back(std::move(writer).value());
  }

  const int num_numeric = schema.num_numeric();
  const int num_boolean = schema.num_boolean();
  std::vector<AttributeStats> stats(static_cast<size_t>(num_numeric));
  std::vector<uint8_t> row(schema.RowBytes());
  std::unique_ptr<storage::BatchReader> reader = source.CreateReader();
  storage::ColumnarBatch batch;
  int64_t row_index = 0;
  while (reader->Next(&batch)) {
    const int64_t rows = batch.num_rows();
    for (int64_t r = 0; r < rows; ++r) {
      // Serialize the row once into the fixed-width file layout; both the
      // hash router and the partition writer consume the same bytes.
      for (int a = 0; a < num_numeric; ++a) {
        const double value = batch.numeric(a)[static_cast<size_t>(r)];
        std::memcpy(row.data() + static_cast<size_t>(a) * sizeof(double),
                    &value, sizeof(double));
        if (!std::isnan(value)) {
          AttributeStats& stat = stats[static_cast<size_t>(a)];
          if (value < stat.min_value) stat.min_value = value;
          if (value > stat.max_value) stat.max_value = value;
        }
      }
      uint8_t* booleans =
          row.data() + static_cast<size_t>(num_numeric) * sizeof(double);
      for (int b = 0; b < num_boolean; ++b) {
        booleans[b] = batch.boolean(b)[static_cast<size_t>(r)];
      }
      const int p =
          options.strategy == PartitionStrategy::kRoundRobin
              ? static_cast<int>(row_index % k)
              : static_cast<int>(HashRowBytes(row, options.hash_seed) %
                                 static_cast<uint64_t>(k));
      OPTRULES_RETURN_IF_ERROR(
          writers[static_cast<size_t>(p)].AppendRawRow(row.data()));
      ++row_index;
    }
  }

  PartitionManifest manifest;
  manifest.schema = schema;
  manifest.schema_hash = SchemaHash(schema);
  manifest.numeric_stats = std::move(stats);
  manifest.partitions.reserve(static_cast<size_t>(k));
  for (int p = 0; p < k; ++p) {
    PartitionInfo partition;
    partition.file = PartitionFileName(p);
    partition.num_rows = writers[static_cast<size_t>(p)].NumRows();
    manifest.partitions.push_back(std::move(partition));
    OPTRULES_RETURN_IF_ERROR(writers[static_cast<size_t>(p)].Close());
  }
  return WriteManifest(manifest, dir);
}

}  // namespace

Result<PartitionedTable> PartitionBatchSource(
    storage::BatchSource& source, const storage::Schema& schema,
    const std::string& dir, const PartitionOptions& options) {
  if (options.num_partitions < 1) {
    return Status::InvalidArgument("num_partitions must be >= 1");
  }
  if (schema.num_numeric() != source.num_numeric() ||
      schema.num_boolean() != source.num_boolean()) {
    return Status::InvalidArgument(
        "schema attribute counts do not match source");
  }
  // Build the whole table in a sibling staging directory and swap it into
  // place only once the manifest is durable: a failure mid-write (disk
  // full, bad source) leaves any existing table at `dir` untouched, and a
  // success replaces it wholesale -- never a manifest pointing at
  // truncated partition files.
  const std::string staging = dir + ".staging";
  std::error_code ec;
  std::filesystem::remove_all(staging, ec);
  std::filesystem::create_directories(staging, ec);
  if (ec) {
    return Status::IoError("cannot create directory: " + staging + ": " +
                           ec.message());
  }
  const Status written =
      WritePartitionedTable(source, schema, staging, options);
  if (!written.ok()) {
    std::filesystem::remove_all(staging, ec);
    return written;
  }
  std::filesystem::remove_all(dir, ec);
  if (ec) {
    std::filesystem::remove_all(staging, ec);
    return Status::IoError("cannot replace directory: " + dir);
  }
  std::filesystem::rename(staging, dir, ec);
  if (ec) {
    std::filesystem::remove_all(staging, ec);
    return Status::IoError("cannot move staged table into place: " + dir);
  }
  return PartitionedTable::Open(dir);
}

Result<PartitionedTable> PartitionRelation(const storage::Relation& relation,
                                           const std::string& dir,
                                           const PartitionOptions& options) {
  storage::RelationBatchSource source(&relation);
  return PartitionBatchSource(source, relation.schema(), dir, options);
}

Result<PartitionedTable> PartitionPagedFile(const std::string& paged_path,
                                            const storage::Schema& schema,
                                            const std::string& dir,
                                            const PartitionOptions& options) {
  Result<std::unique_ptr<storage::PagedFileBatchSource>> source =
      storage::PagedFileBatchSource::Open(paged_path);
  if (!source.ok()) return source.status();
  return PartitionBatchSource(*source.value(), schema, dir, options);
}

Result<PartitionedTable> PartitionCsv(const std::string& csv_path,
                                      const std::string& dir,
                                      const PartitionOptions& options) {
  Result<storage::Relation> relation = storage::ReadCsv(csv_path);
  if (!relation.ok()) return relation.status();
  return PartitionRelation(relation.value(), dir, options);
}

// ----------------------------------------- PartitionedTableBatchSource ----

namespace {

/// Reader that walks the partitions in manifest order, delegating to one
/// partition reader at a time.
class ConcatReader : public storage::BatchReader {
 public:
  ConcatReader(const PartitionedTable* table, int64_t batch_rows,
               storage::PagedReadMode mode)
      : table_(table), batch_rows_(batch_rows), mode_(mode) {}

  bool Next(storage::ColumnarBatch* batch) override {
    while (true) {
      if (reader_ != nullptr && reader_->Next(batch)) return true;
      if (next_partition_ >= table_->num_partitions()) return false;
      Result<std::unique_ptr<storage::PagedFileBatchSource>> source =
          table_->OpenPartition(next_partition_, batch_rows_, mode_);
      // A partition vanishing MID-scan is fatal (BatchReader::Next has no
      // error channel, and silently truncating the table would corrupt
      // results); callers that need a soft failure re-run
      // PartitionedTable::Validate() immediately before scanning, as
      // MiningEngine::TryPrepare does.
      OPTRULES_CHECK(source.ok());
      // The old reader must die before the source it was created from
      // (its destructor reports I/O-wait time into the source).
      reader_.reset();
      source_ = std::move(source).value();
      reader_ = source_->CreateReader();
      ++next_partition_;
    }
  }

 private:
  const PartitionedTable* table_;
  int64_t batch_rows_;
  storage::PagedReadMode mode_;
  int next_partition_ = 0;
  std::unique_ptr<storage::PagedFileBatchSource> source_;
  std::unique_ptr<storage::BatchReader> reader_;
};

}  // namespace

PartitionedTableBatchSource::PartitionedTableBatchSource(
    const PartitionedTable* table, int64_t batch_rows,
    storage::PagedReadMode mode)
    : table_(table), batch_rows_(batch_rows), mode_(mode) {
  OPTRULES_CHECK(table != nullptr);
}

int PartitionedTableBatchSource::num_numeric() const {
  return table_->schema().num_numeric();
}

int PartitionedTableBatchSource::num_boolean() const {
  return table_->schema().num_boolean();
}

int64_t PartitionedTableBatchSource::NumTuples() const {
  return table_->total_rows();
}

std::unique_ptr<storage::BatchReader>
PartitionedTableBatchSource::DoCreateReader() {
  return std::make_unique<ConcatReader>(table_, batch_rows_, mode_);
}

}  // namespace optrules::dist
