#include "dist/partitioned_table.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/bytes.h"
#include "storage/csv.h"
#include "storage/paged_file.h"

namespace optrules::dist {

namespace {

/// Partition file names: part-00000.optr, part-00001.optr, ...
std::string PartitionFileName(int p) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "part-%05d.optr", p);
  return buffer;
}

/// FNV-1a over one serialized row, seeded; the kHash routing function.
uint64_t HashRowBytes(std::span<const uint8_t> row, uint64_t seed) {
  bytes::Fnv1a hash(seed);
  hash.Mix(row);
  return hash.digest();
}

}  // namespace

std::string PartitionedTable::PartitionPath(int p) const {
  OPTRULES_CHECK(0 <= p && p < num_partitions());
  return dir_ + "/" + manifest_.partitions[static_cast<size_t>(p)].file;
}

Result<PartitionedTable> PartitionedTable::Open(const std::string& dir) {
  Result<PartitionManifest> manifest = ReadManifest(dir);
  if (!manifest.ok()) return manifest.status();
  PartitionedTable table(dir, std::move(manifest).value());
  // Validate every partition header against the manifest before handing
  // the table out: a missing or truncated partition should fail at Open
  // time, not in the middle of a distributed scan.
  OPTRULES_RETURN_IF_ERROR(table.Validate());
  return table;
}

Status PartitionedTable::Validate() const {
  for (int p = 0; p < num_partitions(); ++p) {
    Result<storage::PagedFileInfo> info =
        storage::ReadPagedFileInfo(PartitionPath(p));
    if (!info.ok()) return info.status();
    if (info.value().num_numeric != schema().num_numeric() ||
        info.value().num_boolean != schema().num_boolean()) {
      return Status::Corruption("partition attribute counts disagree with "
                                "manifest: " +
                                PartitionPath(p));
    }
    if (info.value().num_rows != partition_rows(p)) {
      return Status::Corruption("partition row count disagrees with "
                                "manifest: " +
                                PartitionPath(p));
    }
  }
  return Status::Ok();
}

Result<std::unique_ptr<storage::PagedFileBatchSource>>
PartitionedTable::OpenPartition(int p, int64_t batch_rows,
                                storage::PagedReadMode mode) const {
  OPTRULES_CHECK(0 <= p && p < num_partitions());
  return storage::PagedFileBatchSource::Open(PartitionPath(p), batch_rows,
                                             mode);
}

namespace {

/// Writes the K partition files + manifest of one partitioning pass into
/// `dir` (which must exist and be empty-ish); the atomic-swap wrapper
/// below points this at a staging directory.
Status WritePartitionedTable(storage::BatchSource& source,
                             const storage::Schema& schema,
                             const std::string& dir,
                             const PartitionOptions& options) {
  const int k = options.num_partitions;
  std::vector<storage::PagedFileWriter> writers;
  writers.reserve(static_cast<size_t>(k));
  for (int p = 0; p < k; ++p) {
    Result<storage::PagedFileWriter> writer = storage::PagedFileWriter::Create(
        dir + "/" + PartitionFileName(p), schema.num_numeric(),
        schema.num_boolean());
    if (!writer.ok()) return writer.status();
    writers.push_back(std::move(writer).value());
  }

  const int num_numeric = schema.num_numeric();
  const int num_boolean = schema.num_boolean();
  std::vector<AttributeStats> stats(static_cast<size_t>(num_numeric));
  // Per-partition stats ([p * num_numeric + c] / [p * num_boolean + b]);
  // the coordinator prunes whole partitions with these, so they follow the
  // same NaN-skipping sentinel rules as the zone maps.
  std::vector<AttributeStats> part_numeric(
      static_cast<size_t>(k) * static_cast<size_t>(num_numeric));
  std::vector<BooleanStats> part_boolean(
      static_cast<size_t>(k) * static_cast<size_t>(num_boolean));
  std::vector<uint8_t> row(schema.RowBytes());
  std::unique_ptr<storage::BatchReader> reader = source.CreateReader();
  storage::ColumnarBatch batch;
  int64_t row_index = 0;
  while (reader->Next(&batch)) {
    const int64_t rows = batch.num_rows();
    for (int64_t r = 0; r < rows; ++r) {
      // Serialize the row once into the fixed-width file layout; both the
      // hash router and the partition writer consume the same bytes.
      for (int a = 0; a < num_numeric; ++a) {
        const double value = batch.numeric(a)[static_cast<size_t>(r)];
        std::memcpy(row.data() + static_cast<size_t>(a) * sizeof(double),
                    &value, sizeof(double));
        if (!std::isnan(value)) {
          AttributeStats& stat = stats[static_cast<size_t>(a)];
          if (value < stat.min_value) stat.min_value = value;
          if (value > stat.max_value) stat.max_value = value;
        }
      }
      uint8_t* booleans =
          row.data() + static_cast<size_t>(num_numeric) * sizeof(double);
      for (int b = 0; b < num_boolean; ++b) {
        booleans[b] = batch.boolean(b)[static_cast<size_t>(r)];
      }
      const int p =
          options.strategy == PartitionStrategy::kRoundRobin
              ? static_cast<int>(row_index % k)
              : static_cast<int>(HashRowBytes(row, options.hash_seed) %
                                 static_cast<uint64_t>(k));
      for (int a = 0; a < num_numeric; ++a) {
        const double value = batch.numeric(a)[static_cast<size_t>(r)];
        if (!std::isnan(value)) {
          AttributeStats& stat =
              part_numeric[static_cast<size_t>(p * num_numeric + a)];
          if (value < stat.min_value) stat.min_value = value;
          if (value > stat.max_value) stat.max_value = value;
        }
      }
      for (int b = 0; b < num_boolean; ++b) {
        BooleanStats& stat =
            part_boolean[static_cast<size_t>(p * num_boolean + b)];
        if (booleans[b] < stat.min_value) stat.min_value = booleans[b];
        if (booleans[b] > stat.max_value) stat.max_value = booleans[b];
      }
      OPTRULES_RETURN_IF_ERROR(
          writers[static_cast<size_t>(p)].AppendRawRow(row.data()));
      ++row_index;
    }
  }

  PartitionManifest manifest;
  manifest.schema = schema;
  manifest.schema_hash = SchemaHash(schema);
  manifest.numeric_stats = std::move(stats);
  manifest.has_partition_stats = true;
  manifest.partition_numeric_stats = std::move(part_numeric);
  manifest.partition_boolean_stats = std::move(part_boolean);
  manifest.partitions.reserve(static_cast<size_t>(k));
  for (int p = 0; p < k; ++p) {
    PartitionInfo partition;
    partition.file = PartitionFileName(p);
    partition.num_rows = writers[static_cast<size_t>(p)].NumRows();
    manifest.partitions.push_back(std::move(partition));
    OPTRULES_RETURN_IF_ERROR(writers[static_cast<size_t>(p)].Close());
  }
  return WriteManifest(manifest, dir);
}

}  // namespace

Result<PartitionedTable> PartitionBatchSource(
    storage::BatchSource& source, const storage::Schema& schema,
    const std::string& dir, const PartitionOptions& options) {
  if (options.num_partitions < 1) {
    return Status::InvalidArgument("num_partitions must be >= 1");
  }
  if (schema.num_numeric() != source.num_numeric() ||
      schema.num_boolean() != source.num_boolean()) {
    return Status::InvalidArgument(
        "schema attribute counts do not match source");
  }
  // Build the whole table in a sibling staging directory and swap it into
  // place only once the manifest is durable: a failure mid-write (disk
  // full, bad source) leaves any existing table at `dir` untouched, and a
  // success replaces it wholesale -- never a manifest pointing at
  // truncated partition files.
  const std::string staging = dir + ".staging";
  std::error_code ec;
  std::filesystem::remove_all(staging, ec);
  std::filesystem::create_directories(staging, ec);
  if (ec) {
    return Status::IoError("cannot create directory: " + staging + ": " +
                           ec.message());
  }
  const Status written =
      WritePartitionedTable(source, schema, staging, options);
  if (!written.ok()) {
    std::filesystem::remove_all(staging, ec);
    return written;
  }
  std::filesystem::remove_all(dir, ec);
  if (ec) {
    std::filesystem::remove_all(staging, ec);
    return Status::IoError("cannot replace directory: " + dir);
  }
  std::filesystem::rename(staging, dir, ec);
  if (ec) {
    std::filesystem::remove_all(staging, ec);
    return Status::IoError("cannot move staged table into place: " + dir);
  }
  return PartitionedTable::Open(dir);
}

Result<PartitionedTable> PartitionRelation(const storage::Relation& relation,
                                           const std::string& dir,
                                           const PartitionOptions& options) {
  storage::RelationBatchSource source(&relation);
  return PartitionBatchSource(source, relation.schema(), dir, options);
}

Result<PartitionedTable> PartitionPagedFile(const std::string& paged_path,
                                            const storage::Schema& schema,
                                            const std::string& dir,
                                            const PartitionOptions& options) {
  Result<std::unique_ptr<storage::PagedFileBatchSource>> source =
      storage::PagedFileBatchSource::Open(paged_path);
  if (!source.ok()) return source.status();
  return PartitionBatchSource(*source.value(), schema, dir, options);
}

Result<PartitionedTable> PartitionCsv(const std::string& csv_path,
                                      const std::string& dir,
                                      const PartitionOptions& options) {
  Result<storage::Relation> relation = storage::ReadCsv(csv_path);
  if (!relation.ok()) return relation.status();
  return PartitionRelation(relation.value(), dir, options);
}

// ----------------------------------------- PartitionedTableBatchSource ----

namespace {

/// Stat accumulators a ConcatReader folds its partition sources into.
struct ConcatStatSinks {
  std::atomic<int64_t>* cache_hits = nullptr;
  std::atomic<int64_t>* cache_misses = nullptr;
  std::atomic<int64_t>* pages_skipped = nullptr;
  std::atomic<int64_t>* partitions_skipped = nullptr;
};

}  // namespace

bool PartitionIsDead(const PartitionedTable& table,
                     const storage::ScanPruneSpec& spec, int p) {
  const PartitionManifest& manifest = table.manifest();
  if (!manifest.has_partition_stats || spec.empty()) return false;
  return storage::AllUnitsDead(
      spec,
      [&](int c) {
        const AttributeStats& stat = manifest.PartitionNumeric(p, c);
        return stat.min_value <= stat.max_value;
      },
      [&](int b) { return manifest.PartitionBoolean(p, b).max_value != 0; });
}

namespace {

/// Reader that walks the partitions in manifest order, delegating to one
/// partition reader at a time. Partitions the manifest stats prove dead
/// under the installed prune spec are skipped without opening their files;
/// the spec is re-installed on each live partition's source so zone maps
/// prune pages inside it too.
class ConcatReader : public storage::BatchReader {
 public:
  ConcatReader(const PartitionedTable* table, int64_t batch_rows,
               storage::PagedReadMode mode,
               std::shared_ptr<const storage::ScanPruneSpec> prune,
               const ConcatStatSinks& sinks)
      : table_(table),
        batch_rows_(batch_rows),
        mode_(mode),
        prune_(std::move(prune)),
        sinks_(sinks) {}

  ~ConcatReader() override { FinishPartition(); }

  bool Next(storage::ColumnarBatch* batch) override {
    while (true) {
      if (reader_ != nullptr && reader_->Next(batch)) return true;
      if (next_partition_ >= table_->num_partitions()) return false;
      const int p = next_partition_++;
      if (prune_ != nullptr && PartitionIsDead(*table_, *prune_, p)) {
        pruned_rows_ += table_->partition_rows(p);
        ++partitions_skipped_;
        continue;
      }
      Result<std::unique_ptr<storage::PagedFileBatchSource>> source =
          table_->OpenPartition(p, batch_rows_, mode_);
      // A partition vanishing MID-scan is fatal (BatchReader::Next has no
      // error channel, and silently truncating the table would corrupt
      // results); callers that need a soft failure re-run
      // PartitionedTable::Validate() immediately before scanning, as
      // MiningEngine::TryPrepare does.
      OPTRULES_CHECK(source.ok());
      // The old reader must die before the source it was created from
      // (its destructor reports I/O-wait time into the source).
      FinishPartition();
      source_ = std::move(source).value();
      source_->InstallPruneSpec(prune_);
      reader_ = source_->CreateReader();
    }
  }

  int64_t pruned_rows() const override {
    return pruned_rows_ +
           (reader_ != nullptr ? reader_->pruned_rows() : 0);
  }

 private:
  /// Retires the current partition: banks its reader's pruned rows, then
  /// destroys reader before source and folds the source's cache/pruning
  /// counters into the parent sinks.
  void FinishPartition() {
    if (reader_ != nullptr) {
      pruned_rows_ += reader_->pruned_rows();
      reader_.reset();
    }
    if (source_ != nullptr) {
      const storage::BatchSourceStats stats = source_->SourceStats();
      if (sinks_.cache_hits != nullptr) {
        sinks_.cache_hits->fetch_add(stats.cache_hits);
      }
      if (sinks_.cache_misses != nullptr) {
        sinks_.cache_misses->fetch_add(stats.cache_misses);
      }
      if (sinks_.pages_skipped != nullptr) {
        sinks_.pages_skipped->fetch_add(stats.pages_skipped);
      }
      source_.reset();
    }
    if (sinks_.partitions_skipped != nullptr && partitions_skipped_ > 0) {
      sinks_.partitions_skipped->fetch_add(partitions_skipped_);
      partitions_skipped_ = 0;
    }
  }

  const PartitionedTable* table_;
  int64_t batch_rows_;
  storage::PagedReadMode mode_;
  std::shared_ptr<const storage::ScanPruneSpec> prune_;
  ConcatStatSinks sinks_;
  int next_partition_ = 0;
  int64_t pruned_rows_ = 0;
  int64_t partitions_skipped_ = 0;
  std::unique_ptr<storage::PagedFileBatchSource> source_;
  std::unique_ptr<storage::BatchReader> reader_;
};

}  // namespace

PartitionedTableBatchSource::PartitionedTableBatchSource(
    const PartitionedTable* table, int64_t batch_rows,
    storage::PagedReadMode mode)
    : table_(table), batch_rows_(batch_rows), mode_(mode) {
  OPTRULES_CHECK(table != nullptr);
}

int PartitionedTableBatchSource::num_numeric() const {
  return table_->schema().num_numeric();
}

int PartitionedTableBatchSource::num_boolean() const {
  return table_->schema().num_boolean();
}

int64_t PartitionedTableBatchSource::NumTuples() const {
  return table_->total_rows();
}

std::unique_ptr<storage::BatchReader>
PartitionedTableBatchSource::DoCreateReader() {
  ConcatStatSinks sinks;
  sinks.cache_hits = &cache_hits_;
  sinks.cache_misses = &cache_misses_;
  sinks.pages_skipped = &pages_skipped_;
  sinks.partitions_skipped = &partitions_skipped_;
  return std::make_unique<ConcatReader>(table_, batch_rows_, mode_,
                                        prune_spec(), sinks);
}

}  // namespace optrules::dist
