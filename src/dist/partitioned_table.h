// PartitionedTable: a table split into K partition PagedFiles + manifest.
//
// The distribution unit of the one counting scan: a Partitioner splits a
// Relation / BatchSource / PagedFile / CSV into K partition files (round-
// robin or content-hash routing) under one directory with a manifest
// (schema hash, per-partition row counts, per-attribute min/max stats);
// workers then scan partitions independently and the coordinator merges
// their partial MultiCountPlans in fixed partition order. Partition files
// are plain PagedFiles, so every existing reader (sync, double-buffered,
// range-sharded) works on a partition unchanged.

#ifndef OPTRULES_DIST_PARTITIONED_TABLE_H_
#define OPTRULES_DIST_PARTITIONED_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "dist/manifest.h"
#include "storage/columnar_batch.h"
#include "storage/relation.h"
#include "storage/scan_prune.h"
#include "storage/schema.h"

namespace optrules::dist {

/// How the partitioner routes rows to partitions.
enum class PartitionStrategy {
  /// Row i goes to partition i mod K. Deterministic and balanced; K = 1
  /// preserves the original row order exactly.
  kRoundRobin,
  /// Row goes to partition FNV1a(row bytes, seed) mod K: co-locates
  /// identical rows and stays stable under row reordering of the input.
  kHash,
};

/// Parameters of one partitioning run.
struct PartitionOptions {
  int num_partitions = 4;
  PartitionStrategy strategy = PartitionStrategy::kRoundRobin;
  /// Seed folded into the kHash row hash (ignored for round-robin).
  uint64_t hash_seed = 0x9e3779b97f4a7c15ull;
};

/// An opened partitioned table: the manifest plus its directory.
class PartitionedTable {
 public:
  /// Opens `dir`/MANIFEST.optm and validates that every partition file
  /// exists with the manifest's attribute counts and row count.
  static Result<PartitionedTable> Open(const std::string& dir);

  /// Re-runs Open's per-partition header validation against the current
  /// on-disk state. Scans CHECK-fail on a partition vanishing mid-read,
  /// so sessions that must fail softly (MiningEngine::TryPrepare) call
  /// this immediately before scanning.
  Status Validate() const;

  const std::string& dir() const { return dir_; }
  const PartitionManifest& manifest() const { return manifest_; }
  const storage::Schema& schema() const { return manifest_.schema; }
  int num_partitions() const { return manifest_.num_partitions(); }
  int64_t total_rows() const { return manifest_.total_rows(); }
  int64_t partition_rows(int p) const {
    return manifest_.partitions[static_cast<size_t>(p)].num_rows;
  }

  /// Absolute path of partition `p`'s PagedFile.
  std::string PartitionPath(int p) const;

  /// Opens one partition as a batch source (each call is an independent
  /// file handle, so concurrent workers never share reader state).
  Result<std::unique_ptr<storage::PagedFileBatchSource>> OpenPartition(
      int p, int64_t batch_rows = storage::kDefaultBatchRows,
      storage::PagedReadMode mode =
          storage::PagedReadMode::kDoubleBuffered) const;

 private:
  PartitionedTable(std::string dir, PartitionManifest manifest)
      : dir_(std::move(dir)), manifest_(std::move(manifest)) {}

  std::string dir_;
  PartitionManifest manifest_;
};

/// Streams `source` into a new partitioned table under `dir` (created if
/// missing; an existing manifest there is overwritten). One pass: each row
/// is serialized once into the fixed-width row layout and routed to its
/// partition writer; per-attribute min/max stats accumulate on the fly.
Result<PartitionedTable> PartitionBatchSource(storage::BatchSource& source,
                                              const storage::Schema& schema,
                                              const std::string& dir,
                                              const PartitionOptions& options);

/// Partitions an in-memory relation.
Result<PartitionedTable> PartitionRelation(const storage::Relation& relation,
                                           const std::string& dir,
                                           const PartitionOptions& options);

/// Partitions an existing single PagedFile (the "one machine, one file"
/// layout this subsystem grows out of).
Result<PartitionedTable> PartitionPagedFile(const std::string& paged_path,
                                            const storage::Schema& schema,
                                            const std::string& dir,
                                            const PartitionOptions& options);

/// Partitions a CSV file (header of name:kind fields; see storage/csv.h).
Result<PartitionedTable> PartitionCsv(const std::string& csv_path,
                                      const std::string& dir,
                                      const PartitionOptions& options);

/// True when the manifest's per-partition stats prove partition `p` dead
/// under `spec`: some listed numeric column is all-NaN there, or some
/// condition conjunct is all-false, for EVERY unit of the spec -- the
/// partition can contribute nothing but its row count. Tables written
/// before per-partition stats existed (has_partition_stats == false) are
/// never pruned. Used by the concatenating reader and the distributed
/// coordinator, which must agree on what "dead" means.
bool PartitionIsDead(const PartitionedTable& table,
                     const storage::ScanPruneSpec& spec, int p);

/// Sequential batch source over a whole partitioned table: partitions are
/// concatenated in manifest order (the same order the coordinator merges
/// partials). This is what boundary planning streams; counting goes
/// through the DistributedScanCoordinator instead, which accounts its
/// logical scans here via NoteScanStarted so `scans_started()` keeps
/// meaning "times the data was read" for partitioned sessions too.
///
/// An installed ScanPruneSpec flows two ways: partitions the manifest's
/// per-partition stats prove dead are skipped wholesale (accounted as
/// partitions_skipped + pruned rows), and the spec is re-installed on each
/// live partition's PagedFileBatchSource so its zone maps prune pages too.
/// SourceStats() aggregates the partition sources' cache and pruning
/// counters.
class PartitionedTableBatchSource : public storage::BatchSource {
 public:
  explicit PartitionedTableBatchSource(
      const PartitionedTable* table,
      int64_t batch_rows = storage::kDefaultBatchRows,
      storage::PagedReadMode mode =
          storage::PagedReadMode::kDoubleBuffered);

  int num_numeric() const override;
  int num_boolean() const override;
  int64_t NumTuples() const override;

  storage::BatchSourceStats SourceStats() const override {
    storage::BatchSourceStats stats;
    stats.cache_hits = cache_hits_.load();
    stats.cache_misses = cache_misses_.load();
    stats.pages_skipped = pages_skipped_.load();
    stats.partitions_skipped = partitions_skipped_.load();
    return stats;
  }

 protected:
  std::unique_ptr<storage::BatchReader> DoCreateReader() override;

 private:
  const PartitionedTable* table_;
  int64_t batch_rows_;
  storage::PagedReadMode mode_;
  std::atomic<int64_t> cache_hits_{0};
  std::atomic<int64_t> cache_misses_{0};
  std::atomic<int64_t> pages_skipped_{0};
  std::atomic<int64_t> partitions_skipped_{0};
};

}  // namespace optrules::dist

#endif  // OPTRULES_DIST_PARTITIONED_TABLE_H_
