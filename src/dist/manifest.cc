#include "dist/manifest.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <utility>

#include "common/bytes.h"

namespace optrules::dist {

namespace {

constexpr const char* kMagicLine = "optrules-manifest 1";

/// Doubles round-trip through the text manifest as 16-hex-digit bit
/// patterns, so stats survive bit-exactly (NaN payloads and signed zeros
/// included) without locale- or precision-dependent decimal formatting.
uint64_t DoubleBits(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double DoubleFromBits(uint64_t bits) {
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

std::string ManifestPath(const std::string& dir) {
  return dir + "/" + kManifestFileName;
}

/// Splits `text` into lines ('\n'-terminated; a missing trailing newline
/// still yields the last line).
std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t begin = 0;
  while (begin < text.size()) {
    size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    lines.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return lines;
}

}  // namespace

int64_t PartitionManifest::total_rows() const {
  int64_t total = 0;
  for (const PartitionInfo& partition : partitions) {
    total += partition.num_rows;
  }
  return total;
}

uint64_t SchemaHash(const storage::Schema& schema) {
  // FNV-1a over "<kind byte><name bytes><0>" per attribute, in declaration
  // order; the separator byte keeps ("ab", "c") distinct from ("a", "bc").
  bytes::Fnv1a hash;
  for (const storage::Attribute& attribute : schema.attributes()) {
    hash.Mix(static_cast<uint8_t>(attribute.kind));
    for (const char c : attribute.name) hash.Mix(static_cast<uint8_t>(c));
    hash.Mix(0);
  }
  return hash.digest();
}

Status WriteManifest(const PartitionManifest& manifest,
                     const std::string& dir) {
  if (manifest.has_partition_stats &&
      (manifest.partition_numeric_stats.size() !=
           manifest.partitions.size() *
               static_cast<size_t>(manifest.schema.num_numeric()) ||
       manifest.partition_boolean_stats.size() !=
           manifest.partitions.size() *
               static_cast<size_t>(manifest.schema.num_boolean()))) {
    return Status::InvalidArgument(
        "partition stats sized inconsistently with schema");
  }
  const std::string path = ManifestPath(dir);
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot create manifest: " + path);
  }
  std::string text = std::string(kMagicLine) + "\n";
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer), "schema_hash %016" PRIx64 "\n",
                SchemaHash(manifest.schema));
  text += buffer;
  std::snprintf(buffer, sizeof(buffer), "attributes %d\n",
                manifest.schema.num_attributes());
  text += buffer;
  for (const storage::Attribute& attribute :
       manifest.schema.attributes()) {
    text += std::string("attr ") + storage::AttrKindName(attribute.kind) +
            " " + attribute.name + "\n";
  }
  std::snprintf(buffer, sizeof(buffer), "partitions %d\n",
                manifest.num_partitions());
  text += buffer;
  for (const PartitionInfo& partition : manifest.partitions) {
    std::snprintf(buffer, sizeof(buffer), "part %lld ",
                  static_cast<long long>(partition.num_rows));
    text += buffer;
    text += partition.file + "\n";
  }
  std::snprintf(buffer, sizeof(buffer), "stats %d\n",
                static_cast<int>(manifest.numeric_stats.size()));
  text += buffer;
  for (const AttributeStats& stats : manifest.numeric_stats) {
    std::snprintf(buffer, sizeof(buffer),
                  "stat %016" PRIx64 " %016" PRIx64 "\n",
                  DoubleBits(stats.min_value), DoubleBits(stats.max_value));
    text += buffer;
  }
  if (manifest.has_partition_stats) {
    // Per-partition sections (partition-major), sized by the schema so the
    // reader can validate the counts like the sections above.
    std::snprintf(buffer, sizeof(buffer), "pnstat %d\n",
                  static_cast<int>(manifest.partition_numeric_stats.size()));
    text += buffer;
    for (const AttributeStats& stats : manifest.partition_numeric_stats) {
      std::snprintf(buffer, sizeof(buffer),
                    "pn %016" PRIx64 " %016" PRIx64 "\n",
                    DoubleBits(stats.min_value),
                    DoubleBits(stats.max_value));
      text += buffer;
    }
    std::snprintf(buffer, sizeof(buffer), "pbstat %d\n",
                  static_cast<int>(manifest.partition_boolean_stats.size()));
    text += buffer;
    for (const BooleanStats& stats : manifest.partition_boolean_stats) {
      std::snprintf(buffer, sizeof(buffer), "pb %d %d\n",
                    static_cast<int>(stats.min_value),
                    static_cast<int>(stats.max_value));
      text += buffer;
    }
  }
  text += "end\n";
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), file) == text.size();
  const int rc = std::fclose(file);
  if (!ok || rc != 0) {
    return Status::IoError("manifest write failed: " + path);
  }
  return Status::Ok();
}

Result<PartitionManifest> ReadManifest(const std::string& dir) {
  const std::string path = ManifestPath(dir);
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError("cannot open manifest: " + path);
  }
  std::string text;
  char chunk[4096];
  size_t got;
  while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    text.append(chunk, got);
  }
  // A transient read failure must surface as IoError, not parse as a
  // truncated (seemingly corrupt) manifest.
  const bool read_failed = std::ferror(file) != 0;
  std::fclose(file);
  if (read_failed) {
    return Status::IoError("manifest read failed: " + path);
  }

  const std::vector<std::string> lines = SplitLines(text);
  size_t next = 0;
  const auto take_line = [&]() -> const std::string* {
    return next < lines.size() ? &lines[next++] : nullptr;
  };
  const auto corrupt = [&path](const std::string& what) {
    return Status::Corruption("manifest " + path + ": " + what);
  };

  const std::string* line = take_line();
  if (line == nullptr || *line != kMagicLine) {
    return corrupt("bad magic line");
  }
  uint64_t declared_hash = 0;
  line = take_line();
  if (line == nullptr ||
      std::sscanf(line->c_str(), "schema_hash %" SCNx64, &declared_hash) !=
          1) {
    return corrupt("bad schema_hash line");
  }
  int num_attributes = 0;
  line = take_line();
  // Every section entry occupies one line of the file, so a count beyond
  // the line count is corruption -- reject it before reserving storage
  // sized by an untrusted number (same for partitions and stats below).
  if (line == nullptr ||
      std::sscanf(line->c_str(), "attributes %d", &num_attributes) != 1 ||
      num_attributes < 1 ||
      static_cast<size_t>(num_attributes) > lines.size()) {
    return corrupt("bad attributes line");
  }
  std::vector<storage::Attribute> attributes;
  attributes.reserve(static_cast<size_t>(num_attributes));
  for (int i = 0; i < num_attributes; ++i) {
    line = take_line();
    storage::Attribute attribute;
    // "attr <kind> <name>"; the name is the rest of the line and may
    // contain spaces (CSV headers do).
    const char* prefixes[] = {"attr numeric ", "attr boolean "};
    const storage::AttrKind kinds[] = {storage::AttrKind::kNumeric,
                                       storage::AttrKind::kBoolean};
    bool matched = false;
    if (line != nullptr) {
      for (int k = 0; k < 2; ++k) {
        const size_t len = std::strlen(prefixes[k]);
        if (line->compare(0, len, prefixes[k]) == 0 && line->size() > len) {
          attribute.kind = kinds[k];
          attribute.name = line->substr(len);
          matched = true;
          break;
        }
      }
    }
    if (!matched) return corrupt("bad attr line");
    attributes.push_back(std::move(attribute));
  }
  Result<storage::Schema> schema = storage::Schema::Create(attributes);
  if (!schema.ok()) return corrupt("invalid schema: " +
                                   schema.status().message());
  if (SchemaHash(schema.value()) != declared_hash) {
    return corrupt("schema hash mismatch");
  }

  PartitionManifest manifest;
  manifest.schema = std::move(schema).value();
  manifest.schema_hash = declared_hash;

  int num_partitions = 0;
  line = take_line();
  if (line == nullptr ||
      std::sscanf(line->c_str(), "partitions %d", &num_partitions) != 1 ||
      num_partitions < 1 ||
      static_cast<size_t>(num_partitions) > lines.size()) {
    return corrupt("bad partitions line");
  }
  manifest.partitions.reserve(static_cast<size_t>(num_partitions));
  for (int p = 0; p < num_partitions; ++p) {
    line = take_line();
    long long rows = -1;
    int name_offset = -1;
    if (line == nullptr ||
        std::sscanf(line->c_str(), "part %lld %n", &rows, &name_offset) !=
            1 ||
        rows < 0 || name_offset < 0 ||
        static_cast<size_t>(name_offset) >= line->size()) {
      return corrupt("bad part line");
    }
    PartitionInfo partition;
    partition.num_rows = rows;
    partition.file = line->substr(static_cast<size_t>(name_offset));
    manifest.partitions.push_back(std::move(partition));
  }

  int num_stats = 0;
  line = take_line();
  if (line == nullptr ||
      std::sscanf(line->c_str(), "stats %d", &num_stats) != 1 ||
      num_stats != manifest.schema.num_numeric()) {
    return corrupt("bad stats line");
  }
  manifest.numeric_stats.reserve(static_cast<size_t>(num_stats));
  for (int i = 0; i < num_stats; ++i) {
    line = take_line();
    uint64_t min_bits = 0;
    uint64_t max_bits = 0;
    if (line == nullptr ||
        std::sscanf(line->c_str(), "stat %" SCNx64 " %" SCNx64, &min_bits,
                    &max_bits) != 2) {
      return corrupt("bad stat line");
    }
    AttributeStats stats;
    stats.min_value = DoubleFromBits(min_bits);
    stats.max_value = DoubleFromBits(max_bits);
    manifest.numeric_stats.push_back(stats);
  }

  // Optional per-partition stats sections (manifests written before they
  // existed go straight to "end"; such tables never prune partitions).
  line = take_line();
  if (line != nullptr && line->compare(0, 7, "pnstat ") == 0) {
    int num_pn = 0;
    const int want_pn = num_partitions * manifest.schema.num_numeric();
    if (std::sscanf(line->c_str(), "pnstat %d", &num_pn) != 1 ||
        num_pn != want_pn ||
        static_cast<size_t>(num_pn) > lines.size()) {
      return corrupt("bad pnstat line");
    }
    manifest.partition_numeric_stats.reserve(static_cast<size_t>(num_pn));
    for (int i = 0; i < num_pn; ++i) {
      line = take_line();
      uint64_t min_bits = 0;
      uint64_t max_bits = 0;
      if (line == nullptr ||
          std::sscanf(line->c_str(), "pn %" SCNx64 " %" SCNx64, &min_bits,
                      &max_bits) != 2) {
        return corrupt("bad pn line");
      }
      AttributeStats stats;
      stats.min_value = DoubleFromBits(min_bits);
      stats.max_value = DoubleFromBits(max_bits);
      // Pruning decisions ride on these, so a stat that could mis-prune
      // (NaN endpoint, inverted non-sentinel range) is corruption, exactly
      // as in the zone-map trailer.
      const bool sentinel =
          stats.min_value == std::numeric_limits<double>::infinity() &&
          stats.max_value == -std::numeric_limits<double>::infinity();
      if (std::isnan(stats.min_value) || std::isnan(stats.max_value) ||
          (!sentinel && stats.min_value > stats.max_value)) {
        return corrupt("invalid pn bounds");
      }
      manifest.partition_numeric_stats.push_back(stats);
    }
    line = take_line();
    int num_pb = 0;
    const int want_pb = num_partitions * manifest.schema.num_boolean();
    if (line == nullptr ||
        std::sscanf(line->c_str(), "pbstat %d", &num_pb) != 1 ||
        num_pb != want_pb ||
        static_cast<size_t>(num_pb) > lines.size()) {
      return corrupt("bad pbstat line");
    }
    manifest.partition_boolean_stats.reserve(static_cast<size_t>(num_pb));
    for (int i = 0; i < num_pb; ++i) {
      line = take_line();
      int min_value = 0;
      int max_value = 0;
      if (line == nullptr ||
          std::sscanf(line->c_str(), "pb %d %d", &min_value, &max_value) !=
              2 ||
          min_value < 0 || min_value > 1 || max_value < 0 || max_value > 1 ||
          (min_value > max_value && !(min_value == 1 && max_value == 0))) {
        return corrupt("bad pb line");
      }
      BooleanStats stats;
      stats.min_value = static_cast<uint8_t>(min_value);
      stats.max_value = static_cast<uint8_t>(max_value);
      manifest.partition_boolean_stats.push_back(stats);
    }
    manifest.has_partition_stats = true;
    line = take_line();
  }
  if (line == nullptr || *line != "end") return corrupt("missing end line");
  return manifest;
}

}  // namespace optrules::dist
