// Partition manifest: the durable description of a PartitionedTable.
//
// A partitioned table is a directory of K partition PagedFiles plus one
// MANIFEST.optm text file recording the schema (and a hash of it, so a
// reader can refuse a manifest whose attribute list was edited out from
// under the data), the per-partition row counts, and NaN-safe per-numeric-
// attribute min/max statistics gathered while partitioning. The manifest
// is what lets a coordinator fan a scan out to workers that each open one
// partition file cold -- the idiom mirrors the header-page + per-file
// metadata layering of classic buffer/file managers.

#ifndef OPTRULES_DIST_MANIFEST_H_
#define OPTRULES_DIST_MANIFEST_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/schema.h"

namespace optrules::dist {

/// File name of the manifest inside a partitioned-table directory.
inline constexpr const char* kManifestFileName = "MANIFEST.optm";

/// One partition of the table.
struct PartitionInfo {
  /// Partition file name, relative to the table directory.
  std::string file;
  int64_t num_rows = 0;
};

/// NaN-safe observed range of one numeric attribute across the whole
/// table: +/-infinity when the attribute never held a finite value.
struct AttributeStats {
  double min_value = std::numeric_limits<double>::infinity();
  double max_value = -std::numeric_limits<double>::infinity();
};

/// Observed 0/1 range of one Boolean attribute; the empty sentinel is
/// min > max (mirroring the zone-map convention), and max_value == 0
/// means "no true row".
struct BooleanStats {
  uint8_t min_value = 1;
  uint8_t max_value = 0;
};

/// The manifest contents of a partitioned table.
struct PartitionManifest {
  storage::Schema schema;
  /// SchemaHash(schema) at write time; re-validated on read.
  uint64_t schema_hash = 0;
  std::vector<PartitionInfo> partitions;
  /// Per numeric attribute, aligned with schema numeric indices.
  std::vector<AttributeStats> numeric_stats;
  /// Optional per-partition per-column stats -- the partition-granular
  /// twin of the v2 zone maps, letting a coordinator skip whole partitions
  /// a ScanPruneSpec proves dead. Present iff has_partition_stats (older
  /// manifests lack the sections and simply never prune partitions).
  bool has_partition_stats = false;
  /// [p * num_numeric + c]; NaN values skipped, sentinel when all-NaN.
  std::vector<AttributeStats> partition_numeric_stats;
  /// [p * num_boolean + b].
  std::vector<BooleanStats> partition_boolean_stats;

  int num_partitions() const { return static_cast<int>(partitions.size()); }
  int64_t total_rows() const;

  const AttributeStats& PartitionNumeric(int p, int c) const {
    return partition_numeric_stats[static_cast<size_t>(
        p * schema.num_numeric() + c)];
  }
  const BooleanStats& PartitionBoolean(int p, int b) const {
    return partition_boolean_stats[static_cast<size_t>(
        p * schema.num_boolean() + b)];
  }
};

/// Order-sensitive FNV-1a hash over the schema's attribute names and
/// kinds; the manifest's integrity check for the schema block.
uint64_t SchemaHash(const storage::Schema& schema);

/// Writes `manifest` as `dir`/MANIFEST.optm (the schema hash is recomputed
/// from manifest.schema, so callers cannot persist a stale hash).
Status WriteManifest(const PartitionManifest& manifest,
                     const std::string& dir);

/// Reads and validates `dir`/MANIFEST.optm (magic line, schema hash,
/// per-section counts).
Result<PartitionManifest> ReadManifest(const std::string& dir);

}  // namespace optrules::dist

#endif  // OPTRULES_DIST_MANIFEST_H_
