#include "dist/fault_injection.h"

#include <chrono>
#include <thread>

namespace optrules::dist {

Result<bucketing::MultiCountPlan> FaultInjectingScanWorker::CountPartition(
    const std::string& partition_path, const PartitionScanSpec& spec,
    storage::BatchSourceStats* stats) {
  if (!healthy_) {
    return Status::IoError("fault-injected worker is down");
  }
  const int64_t ordinal = calls_++;
  for (const InjectedFault& fault : faults_) {
    if (fault.at_call != ordinal) continue;
    if (fault.delay_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(fault.delay_ms));
    }
    if (!fault.status.ok()) {
      if (fault.mark_unhealthy) healthy_ = false;
      return fault.status;
    }
    break;  // delay-only fault: fall through to the real scan
  }
  return inner_->CountPartition(partition_path, spec, stats);
}

}  // namespace optrules::dist
