#include "dist/wire.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>

#include "common/bytes.h"

namespace optrules::dist {

namespace {

constexpr uint32_t kMaxFrameBytes = 1u << 30;  // 1 GiB sanity bound

Status WriteAll(int fd, const uint8_t* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("pipe write failed: ") +
                             std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

using SteadyClock = std::chrono::steady_clock;

/// Time budget of one timed frame read: the total deadline is fixed at
/// construction; the liveness window restarts whenever bytes arrive.
struct ReadDeadline {
  int64_t liveness_ms = 0;
  SteadyClock::time_point total_deadline;
  bool has_total = false;

  explicit ReadDeadline(const FrameTimeouts& timeouts)
      : liveness_ms(timeouts.liveness_ms) {
    if (timeouts.total_ms > 0) {
      has_total = true;
      total_deadline =
          SteadyClock::now() + std::chrono::milliseconds(timeouts.total_ms);
    }
  }

  bool unlimited() const { return liveness_ms <= 0 && !has_total; }
};

/// Blocks until `fd` is readable or the deadline expires. OK = readable.
Status WaitReadable(int fd, const ReadDeadline& deadline) {
  for (;;) {
    int timeout_ms = -1;
    if (deadline.has_total) {
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(deadline.total_deadline -
                                     SteadyClock::now());
      if (remaining.count() <= 0) {
        return Status::DeadlineExceeded("partition scan deadline exceeded");
      }
      timeout_ms = static_cast<int>(std::min<int64_t>(
          remaining.count() + 1, std::numeric_limits<int>::max()));
    }
    if (deadline.liveness_ms > 0) {
      const int liveness = static_cast<int>(std::min<int64_t>(
          deadline.liveness_ms, std::numeric_limits<int>::max()));
      timeout_ms = timeout_ms < 0 ? liveness : std::min(timeout_ms, liveness);
    }
    struct pollfd pfd = {fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("pipe poll failed: ") +
                             std::strerror(errno));
    }
    if (ready > 0) return Status::Ok();
    // poll timed out: decide which budget ran out. A liveness window that
    // is shorter than the remaining total means the peer went silent.
    if (deadline.has_total &&
        SteadyClock::now() >= deadline.total_deadline) {
      return Status::DeadlineExceeded("partition scan deadline exceeded");
    }
    return Status::DeadlineExceeded("worker silent past liveness timeout");
  }
}

/// Reads exactly `size` bytes; at_start distinguishes clean EOF (NotFound)
/// from a truncated frame (Corruption). A non-null deadline bounds the
/// wait before every read (any arriving byte restarts the liveness
/// window by construction: the next wait starts fresh).
Status ReadAll(int fd, uint8_t* data, size_t size, bool at_start,
               const ReadDeadline* deadline = nullptr) {
  size_t got = 0;
  while (got < size) {
    if (deadline != nullptr && !deadline->unlimited()) {
      OPTRULES_RETURN_IF_ERROR(WaitReadable(fd, *deadline));
    }
    const ssize_t n = ::read(fd, data + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("pipe read failed: ") +
                             std::strerror(errno));
    }
    if (n == 0) {
      return at_start && got == 0
                 ? Status::NotFound("pipe closed")
                 : Status::Corruption("pipe closed mid-frame");
    }
    got += static_cast<size_t>(n);
  }
  return Status::Ok();
}

using bytes::AppendArray;
using bytes::AppendScalar;
using bytes::AppendString;
using bytes::ByteReader;

// The protocol stores condition / sum-target index lists as int32 arrays;
// the raw-array helpers rely on int being exactly that wide (true on
// every platform this native-endian protocol connects).
static_assert(sizeof(int) == sizeof(int32_t));

}  // namespace

Status WriteFrame(int fd, std::span<const uint8_t> payload) {
  OPTRULES_CHECK(payload.size() <= kMaxFrameBytes);
  const uint32_t length = static_cast<uint32_t>(payload.size());
  uint8_t header[sizeof(length)];
  std::memcpy(header, &length, sizeof(length));
  OPTRULES_RETURN_IF_ERROR(WriteAll(fd, header, sizeof(header)));
  return WriteAll(fd, payload.data(), payload.size());
}

Status ReadFrame(int fd, std::vector<uint8_t>* payload) {
  OPTRULES_CHECK(payload != nullptr);
  uint32_t length = 0;
  uint8_t header[sizeof(length)];
  OPTRULES_RETURN_IF_ERROR(
      ReadAll(fd, header, sizeof(header), /*at_start=*/true));
  std::memcpy(&length, header, sizeof(length));
  if (length > kMaxFrameBytes) {
    return Status::Corruption("oversized frame");
  }
  payload->resize(length);
  if (length == 0) return Status::Ok();
  return ReadAll(fd, payload->data(), length, /*at_start=*/false);
}

Status ReadFrameTimed(int fd, std::vector<uint8_t>* payload,
                      const FrameTimeouts& timeouts) {
  OPTRULES_CHECK(payload != nullptr);
  const ReadDeadline deadline(timeouts);
  uint32_t length = 0;
  uint8_t header[sizeof(length)];
  OPTRULES_RETURN_IF_ERROR(
      ReadAll(fd, header, sizeof(header), /*at_start=*/true, &deadline));
  std::memcpy(&length, header, sizeof(length));
  if (length > kMaxFrameBytes) {
    return Status::Corruption("oversized frame");
  }
  payload->resize(length);
  if (length == 0) return Status::Ok();
  return ReadAll(fd, payload->data(), length, /*at_start=*/false, &deadline);
}

void EncodeScanRequest(const std::string& partition_path, int64_t batch_rows,
                       storage::PagedReadMode read_mode,
                       const bucketing::MultiCountSpec& spec,
                       std::vector<uint8_t>* out) {
  OPTRULES_CHECK(out != nullptr);
  AppendScalar<uint8_t>(out, static_cast<uint8_t>(FrameKind::kScanRequest));
  AppendString(out, partition_path);
  AppendScalar<int64_t>(out, batch_rows);
  AppendScalar<uint8_t>(
      out, read_mode == storage::PagedReadMode::kSynchronous ? 0 : 1);
  AppendScalar<int32_t>(out, spec.num_targets);

  // Boundary table: each distinct pointer once, in first-use order across
  // the 1-D channels then the grid axes (the same identity rule the plan's
  // locate groups use, so shared boundary sets stay shared remotely).
  std::vector<const bucketing::BucketBoundaries*> table;
  const auto index_of = [&table](const bucketing::BucketBoundaries* b) {
    for (size_t i = 0; i < table.size(); ++i) {
      if (table[i] == b) return static_cast<uint32_t>(i);
    }
    table.push_back(b);
    return static_cast<uint32_t>(table.size() - 1);
  };
  std::vector<uint32_t> channel_boundary(spec.channels.size());
  for (size_t c = 0; c < spec.channels.size(); ++c) {
    channel_boundary[c] = index_of(spec.channels[c].boundaries);
  }
  std::vector<std::pair<uint32_t, uint32_t>> grid_boundary(
      spec.grid_channels.size());
  for (size_t g = 0; g < spec.grid_channels.size(); ++g) {
    grid_boundary[g] = {index_of(spec.grid_channels[g].x_boundaries),
                        index_of(spec.grid_channels[g].y_boundaries)};
  }
  AppendScalar<uint32_t>(out, static_cast<uint32_t>(table.size()));
  for (const bucketing::BucketBoundaries* boundaries : table) {
    AppendArray(out, boundaries->cut_points());
  }

  AppendScalar<uint32_t>(out, static_cast<uint32_t>(spec.conditions.size()));
  for (const std::vector<int>& condition : spec.conditions) {
    AppendArray(out, condition);
  }
  AppendScalar<uint32_t>(out, static_cast<uint32_t>(spec.channels.size()));
  for (size_t c = 0; c < spec.channels.size(); ++c) {
    const bucketing::CountChannel& channel = spec.channels[c];
    AppendScalar<int32_t>(out, channel.column);
    AppendScalar<uint32_t>(out, channel_boundary[c]);
    AppendScalar<int32_t>(out, channel.condition);
    AppendScalar<uint8_t>(out, channel.count_targets ? 1 : 0);
    AppendArray(out, channel.sum_targets);
  }
  AppendScalar<uint32_t>(out,
                         static_cast<uint32_t>(spec.grid_channels.size()));
  for (size_t g = 0; g < spec.grid_channels.size(); ++g) {
    const bucketing::GridChannel& channel = spec.grid_channels[g];
    AppendScalar<int32_t>(out, channel.x_column);
    AppendScalar<uint32_t>(out, grid_boundary[g].first);
    AppendScalar<int32_t>(out, channel.y_column);
    AppendScalar<uint32_t>(out, grid_boundary[g].second);
  }
}

Result<ScanRequestFrame> DecodeScanRequest(
    std::span<const uint8_t> payload) {
  ByteReader reader(payload);
  uint8_t kind = 0;
  OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&kind));
  if (kind != static_cast<uint8_t>(FrameKind::kScanRequest)) {
    return Status::InvalidArgument("not a scan request frame");
  }
  ScanRequestFrame frame;
  OPTRULES_RETURN_IF_ERROR(reader.ReadString(&frame.partition_path));
  OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&frame.batch_rows));
  if (frame.batch_rows < 1) {
    return Status::Corruption("invalid batch_rows in scan request");
  }
  uint8_t mode = 0;
  OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&mode));
  frame.read_mode = mode == 0 ? storage::PagedReadMode::kSynchronous
                              : storage::PagedReadMode::kDoubleBuffered;
  OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&frame.spec.num_targets));

  uint32_t num_boundaries = 0;
  OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&num_boundaries));
  // Every table entry consumes at least its 8-byte length prefix, so a
  // count past the REMAINING bytes / 8 is corruption, not an allocation
  // request (same for the section counts below): reserve/resize must
  // never be driven past what the frame could possibly hold.
  if (num_boundaries > reader.remaining() / 8) {
    return Status::Corruption("boundary table count exceeds payload");
  }
  // Grow the section vectors as entries actually parse (bounded upfront
  // reserve): memory use stays proportional to bytes present in the
  // frame, so a hostile count can never drive one giant allocation.
  frame.boundaries.reserve(std::min<uint32_t>(num_boundaries, 4096));
  for (uint32_t i = 0; i < num_boundaries; ++i) {
    std::vector<double> cuts;
    OPTRULES_RETURN_IF_ERROR(reader.ReadArray(&cuts));
    for (size_t j = 0; j + 1 < cuts.size(); ++j) {
      if (!(cuts[j] <= cuts[j + 1])) {
        return Status::Corruption("unsorted cut points in scan request");
      }
    }
    frame.boundaries.push_back(
        bucketing::BucketBoundaries::FromCutPoints(std::move(cuts)));
  }
  const auto boundary_at =
      [&frame,
       num_boundaries](uint32_t i) -> const bucketing::BucketBoundaries* {
    return i < num_boundaries ? &frame.boundaries[i] : nullptr;
  };

  uint32_t num_conditions = 0;
  OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&num_conditions));
  if (num_conditions > reader.remaining() / 8) {
    return Status::Corruption("condition count exceeds payload");
  }
  frame.spec.conditions.reserve(std::min<uint32_t>(num_conditions, 4096));
  for (uint32_t c = 0; c < num_conditions; ++c) {
    std::vector<int> condition;
    OPTRULES_RETURN_IF_ERROR(reader.ReadArray(&condition));
    frame.spec.conditions.push_back(std::move(condition));
  }
  uint32_t num_channels = 0;
  OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&num_channels));
  if (num_channels > reader.remaining() / 8) {
    return Status::Corruption("channel count exceeds payload");
  }
  frame.spec.channels.reserve(std::min<uint32_t>(num_channels, 4096));
  for (uint32_t c = 0; c < num_channels; ++c) {
    bucketing::CountChannel channel;
    uint32_t boundary = 0;
    uint8_t count_targets = 0;
    OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&channel.column));
    OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&boundary));
    OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&channel.condition));
    OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&count_targets));
    OPTRULES_RETURN_IF_ERROR(reader.ReadArray(&channel.sum_targets));
    channel.count_targets = count_targets != 0;
    channel.boundaries = boundary_at(boundary);
    if (channel.boundaries == nullptr) {
      return Status::Corruption("boundary index out of range");
    }
    if (channel.condition != bucketing::CountChannel::kUnconditional &&
        (channel.condition < 0 ||
         channel.condition >= static_cast<int>(num_conditions))) {
      return Status::Corruption("condition index out of range");
    }
    frame.spec.channels.push_back(std::move(channel));
  }
  uint32_t num_grids = 0;
  OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&num_grids));
  if (num_grids > reader.remaining() / 8) {
    return Status::Corruption("grid channel count exceeds payload");
  }
  frame.spec.grid_channels.reserve(std::min<uint32_t>(num_grids, 4096));
  for (uint32_t g = 0; g < num_grids; ++g) {
    bucketing::GridChannel channel;
    uint32_t x_boundary = 0;
    uint32_t y_boundary = 0;
    OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&channel.x_column));
    OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&x_boundary));
    OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&channel.y_column));
    OPTRULES_RETURN_IF_ERROR(reader.ReadScalar(&y_boundary));
    channel.x_boundaries = boundary_at(x_boundary);
    channel.y_boundaries = boundary_at(y_boundary);
    if (channel.x_boundaries == nullptr || channel.y_boundaries == nullptr) {
      return Status::Corruption("boundary index out of range");
    }
    frame.spec.grid_channels.push_back(channel);
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes in scan request");
  }
  return frame;
}

void EncodeErrorFrame(const Status& status, std::vector<uint8_t>* out) {
  OPTRULES_CHECK(out != nullptr);
  AppendScalar<uint8_t>(out, static_cast<uint8_t>(FrameKind::kError));
  AppendScalar<int32_t>(out, static_cast<int32_t>(status.code()));
  AppendString(out, status.message());
}

Status DecodeErrorFrame(std::span<const uint8_t> payload) {
  ByteReader reader(payload);
  uint8_t kind = 0;
  Status parse = reader.ReadScalar(&kind);
  int32_t code = 0;
  std::string message;
  if (parse.ok()) parse = reader.ReadScalar(&code);
  if (parse.ok()) parse = reader.ReadString(&message);
  if (!parse.ok() || kind != static_cast<uint8_t>(FrameKind::kError)) {
    return Status::Corruption("malformed error frame");
  }
  // An OK code inside an error frame is itself a protocol violation.
  if (code == static_cast<int32_t>(StatusCode::kOk)) {
    return Status::Corruption("error frame carried OK status");
  }
  return Status(static_cast<StatusCode>(code), std::move(message));
}

void AppendWorkerScanStats(const WorkerScanStats& stats,
                           std::vector<uint8_t>* out) {
  OPTRULES_CHECK(out != nullptr);
  AppendScalar<uint64_t>(out, stats.pages_skipped);
  AppendScalar<uint64_t>(out, stats.cache_hits);
  AppendScalar<uint64_t>(out, stats.cache_misses);
  AppendScalar<double>(out, stats.io_wait_seconds);
}

Status ReadWorkerScanStats(std::span<const uint8_t> bytes,
                           WorkerScanStats* stats) {
  ByteReader reader(bytes);
  Status parse = reader.ReadScalar(&stats->pages_skipped);
  if (parse.ok()) parse = reader.ReadScalar(&stats->cache_hits);
  if (parse.ok()) parse = reader.ReadScalar(&stats->cache_misses);
  if (parse.ok()) parse = reader.ReadScalar(&stats->io_wait_seconds);
  if (!parse.ok()) {
    return Status::Corruption("truncated worker scan stats header");
  }
  return Status::Ok();
}

}  // namespace optrules::dist
