// ScanWorker: one executor of partition counting scans.
//
// The coordinator hands each worker a (partition file, MultiCountSpec)
// pair and gets back a partial MultiCountPlan. Two implementations:
//
//  * InProcessScanWorker -- opens the partition with its own
//    (double-buffered by default) reader and runs ExecuteMultiCount right
//    here. The per-machine path.
//  * SubprocessScanWorker -- forks an optrules_workerd process and speaks
//    the length-prefixed pipe protocol (spec + boundaries down, serialized
//    partial plan state up), so multi-process / multi-machine execution is
//    exercised for real; the returned partials are bit-identical to the
//    in-process worker's because both run the serial reference chain over
//    the same bytes and doubles travel as bit patterns.
//
// Worker partials are always the serial (pool == nullptr) chain: a pure
// function of (partition file, spec), which is what makes the
// coordinator's fixed-order merge deterministic for ANY worker count and
// worker kind -- and what makes retry, failover, and speculative
// re-execution safe: every re-run of a partition produces the same bits,
// so the coordinator can merge whichever attempt finishes first.
//
// Failure semantics: a worker whose transport broke (dead pipe, truncated
// or garbage frame, deadline expiry) reports healthy() == false and must
// be discarded -- its pipe state is unknown. A clean kError frame leaves
// the worker healthy: the daemon answered, only the request failed.

#ifndef OPTRULES_DIST_SCAN_WORKER_H_
#define OPTRULES_DIST_SCAN_WORKER_H_

#include <sys/types.h>

#include <cstdint>
#include <memory>
#include <string>

#include "bucketing/counting.h"
#include "common/status.h"
#include "storage/columnar_batch.h"

namespace optrules::dist {

/// Reader parameters + the spec one partition scan runs.
struct PartitionScanSpec {
  /// Spec to count; must outlive the call (the returned plan was built
  /// from it, boundary pointers included).
  const bucketing::MultiCountSpec* spec = nullptr;
  int64_t batch_rows = storage::kDefaultBatchRows;
  storage::PagedReadMode read_mode =
      storage::PagedReadMode::kDoubleBuffered;
  /// Per-attempt reply deadline in ms; 0 = none. Subprocess workers kill
  /// the daemon on expiry (DeadlineExceeded); in-process workers cannot
  /// abandon a running scan and ignore it.
  int64_t deadline_ms = 0;
  /// Maximum silent gap before the daemon counts as hung; 0 = none. The
  /// daemon heartbeats every ~100 ms mid-scan, so expiry means hung, not
  /// slow. Subprocess-only, like deadline_ms.
  int64_t liveness_timeout_ms = 0;
};

/// Executes counting scans over single partition files.
class ScanWorker {
 public:
  virtual ~ScanWorker() = default;

  /// Counts `spec` over the partition PagedFile at `partition_path` and
  /// returns the partial plan (serial reference chain; see file comment).
  /// `stats`, when non-null, receives the scan's cache/pruning counters:
  /// full counters from the in-process worker, pages_skipped only from the
  /// subprocess worker (the daemon's buffer-pool hits happen in its own
  /// process and are not shipped back). Pages a worker pruned are already
  /// accounted inside the partial's total_tuples, so the counters are
  /// diagnostics, never inputs to the merge.
  virtual Result<bucketing::MultiCountPlan> CountPartition(
      const std::string& partition_path, const PartitionScanSpec& spec,
      storage::BatchSourceStats* stats = nullptr) = 0;

  /// Cheap health probe (kPing/kPong for subprocess workers). A failed
  /// ping marks the worker unhealthy. `timeout_ms` bounds the wait.
  virtual Status Ping(int64_t timeout_ms) {
    (void)timeout_ms;
    return Status::Ok();
  }

  /// False once the worker's transport is broken (dead or hung daemon,
  /// corrupt frame): the worker must be replaced, not reused.
  virtual bool healthy() const { return true; }
};

/// Same-process worker with its own double-buffered partition reader.
class InProcessScanWorker final : public ScanWorker {
 public:
  Result<bucketing::MultiCountPlan> CountPartition(
      const std::string& partition_path, const PartitionScanSpec& spec,
      storage::BatchSourceStats* stats) override;
};

/// Worker backed by a forked optrules_workerd subprocess. One worker can
/// serve many CountPartition calls sequentially over its pipe pair; the
/// destructor sends a shutdown frame and reaps the child with WNOHANG +
/// SIGTERM -> SIGKILL escalation, so a wedged daemon can never hang the
/// embedding process at shutdown.
class SubprocessScanWorker final : public ScanWorker {
 public:
  /// Forks + execs `workerd_path` (an optrules_workerd binary) with a pipe
  /// pair on its stdin/stdout. Side effect, once per process: sets the
  /// SIGPIPE disposition to SIG_IGN so a daemon dying between frames
  /// surfaces as an IoError on the coordinator's next write instead of
  /// killing the embedding process -- hosts that install their own
  /// SIGPIPE handling should do so AFTER the first Spawn.
  static Result<std::unique_ptr<SubprocessScanWorker>> Spawn(
      const std::string& workerd_path);

  ~SubprocessScanWorker() override;
  SubprocessScanWorker(const SubprocessScanWorker&) = delete;
  SubprocessScanWorker& operator=(const SubprocessScanWorker&) = delete;

  Result<bucketing::MultiCountPlan> CountPartition(
      const std::string& partition_path, const PartitionScanSpec& spec,
      storage::BatchSourceStats* stats) override;

  Status Ping(int64_t timeout_ms) override;

  bool healthy() const override { return healthy_; }

  /// Child pid, for tests that kill the daemon externally.
  pid_t pid() const { return pid_; }

 private:
  SubprocessScanWorker() = default;

  /// Marks the worker unusable and SIGKILLs + reaps the child now (used
  /// on deadline expiry: the daemon may be wedged mid-scan and must not
  /// linger until the destructor).
  void KillNow();

  int to_child_ = -1;    ///< write end: requests
  int from_child_ = -1;  ///< read end: replies
  pid_t pid_ = -1;
  bool healthy_ = true;
};

/// Resolves the worker daemon binary: `configured` when non-empty, else
/// the OPTRULES_WORKERD environment variable, else "" (caller errors).
std::string ResolveWorkerdPath(const std::string& configured);

}  // namespace optrules::dist

#endif  // OPTRULES_DIST_SCAN_WORKER_H_
