// ScanWorker: one executor of partition counting scans.
//
// The coordinator hands each worker a (partition file, MultiCountSpec)
// pair and gets back a partial MultiCountPlan. Two implementations:
//
//  * InProcessScanWorker -- opens the partition with its own
//    (double-buffered by default) reader and runs ExecuteMultiCount right
//    here. The per-machine path.
//  * SubprocessScanWorker -- forks an optrules_workerd process and speaks
//    the length-prefixed pipe protocol (spec + boundaries down, serialized
//    partial plan state up), so multi-process / multi-machine execution is
//    exercised for real; the returned partials are bit-identical to the
//    in-process worker's because both run the serial reference chain over
//    the same bytes and doubles travel as bit patterns.
//
// Worker partials are always the serial (pool == nullptr) chain: a pure
// function of (partition file, spec), which is what makes the
// coordinator's fixed-order merge deterministic for ANY worker count and
// worker kind. Parallelism comes from scanning partitions concurrently.

#ifndef OPTRULES_DIST_SCAN_WORKER_H_
#define OPTRULES_DIST_SCAN_WORKER_H_

#include <sys/types.h>

#include <cstdint>
#include <memory>
#include <string>

#include "bucketing/counting.h"
#include "common/status.h"
#include "storage/columnar_batch.h"

namespace optrules::dist {

/// Reader parameters + the spec one partition scan runs.
struct PartitionScanSpec {
  /// Spec to count; must outlive the call (the returned plan was built
  /// from it, boundary pointers included).
  const bucketing::MultiCountSpec* spec = nullptr;
  int64_t batch_rows = storage::kDefaultBatchRows;
  storage::PagedReadMode read_mode =
      storage::PagedReadMode::kDoubleBuffered;
};

/// Executes counting scans over single partition files.
class ScanWorker {
 public:
  virtual ~ScanWorker() = default;

  /// Counts `spec` over the partition PagedFile at `partition_path` and
  /// returns the partial plan (serial reference chain; see file comment).
  /// `stats`, when non-null, receives the scan's cache/pruning counters:
  /// full counters from the in-process worker, pages_skipped only from the
  /// subprocess worker (the daemon's buffer-pool hits happen in its own
  /// process and are not shipped back). Pages a worker pruned are already
  /// accounted inside the partial's total_tuples, so the counters are
  /// diagnostics, never inputs to the merge.
  virtual Result<bucketing::MultiCountPlan> CountPartition(
      const std::string& partition_path, const PartitionScanSpec& spec,
      storage::BatchSourceStats* stats = nullptr) = 0;
};

/// Same-process worker with its own double-buffered partition reader.
class InProcessScanWorker final : public ScanWorker {
 public:
  Result<bucketing::MultiCountPlan> CountPartition(
      const std::string& partition_path, const PartitionScanSpec& spec,
      storage::BatchSourceStats* stats) override;
};

/// Worker backed by a forked optrules_workerd subprocess. One worker can
/// serve many CountPartition calls sequentially over its pipe pair; the
/// destructor sends a shutdown frame and reaps the child.
class SubprocessScanWorker final : public ScanWorker {
 public:
  /// Forks + execs `workerd_path` (an optrules_workerd binary) with a pipe
  /// pair on its stdin/stdout. Side effect, once per process: sets the
  /// SIGPIPE disposition to SIG_IGN so a daemon dying between frames
  /// surfaces as an IoError on the coordinator's next write instead of
  /// killing the embedding process -- hosts that install their own
  /// SIGPIPE handling should do so AFTER the first Spawn.
  static Result<std::unique_ptr<SubprocessScanWorker>> Spawn(
      const std::string& workerd_path);

  ~SubprocessScanWorker() override;
  SubprocessScanWorker(const SubprocessScanWorker&) = delete;
  SubprocessScanWorker& operator=(const SubprocessScanWorker&) = delete;

  Result<bucketing::MultiCountPlan> CountPartition(
      const std::string& partition_path, const PartitionScanSpec& spec,
      storage::BatchSourceStats* stats) override;

 private:
  SubprocessScanWorker() = default;

  int to_child_ = -1;    ///< write end: requests
  int from_child_ = -1;  ///< read end: replies
  pid_t pid_ = -1;
};

/// Resolves the worker daemon binary: `configured` when non-empty, else
/// the OPTRULES_WORKERD environment variable, else "" (caller errors).
std::string ResolveWorkerdPath(const std::string& configured);

}  // namespace optrules::dist

#endif  // OPTRULES_DIST_SCAN_WORKER_H_
