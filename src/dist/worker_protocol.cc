#include "dist/worker_protocol.h"

#include <limits>
#include <memory>
#include <vector>

#include "bucketing/counting.h"
#include "bucketing/parallel_count.h"
#include "common/bytes.h"
#include "dist/wire.h"
#include "storage/columnar_batch.h"

namespace optrules::dist {

namespace {

/// Conservative upper estimate of the partial-state reply size: the
/// dominant per-bucket / per-cell arrays (u, v planes, min/max, sum +
/// compensation pairs) at 8 bytes per slot, plus a small per-array
/// overhead. Used to refuse specs whose reply could never fit a frame
/// BEFORE any accumulator is allocated.
uint64_t EstimateReplyBytes(const bucketing::MultiCountSpec& spec) {
  uint64_t bytes = 64;
  for (const bucketing::CountChannel& channel : spec.channels) {
    const auto buckets =
        static_cast<uint64_t>(channel.boundaries->num_buckets());
    const uint64_t rows = 3 +
                          (channel.count_targets
                               ? static_cast<uint64_t>(spec.num_targets)
                               : 0) +
                          2 * channel.sum_targets.size();
    bytes += 64 + rows * (8 + buckets * 8);
  }
  for (const bucketing::GridChannel& channel : spec.grid_channels) {
    const uint64_t cells =
        static_cast<uint64_t>(channel.x_boundaries->num_buckets()) *
        static_cast<uint64_t>(channel.y_boundaries->num_buckets());
    bytes += 64 + (1 + static_cast<uint64_t>(spec.num_targets)) *
                      (8 + cells * 8);
  }
  return bytes;
}

/// Frames are capped at 1 GiB (wire.cc); leave headroom for overhead.
constexpr uint64_t kMaxReplyBytes = 1ull << 29;  // 512 MiB

/// Validates every column reference of a decoded spec against the opened
/// partition's attribute counts. ExecuteMultiCount enforces the same
/// invariants with CHECKs, but a daemon must answer a corrupt or
/// mis-addressed frame with an error frame, not a process abort.
Status ValidateSpecForSource(const bucketing::MultiCountSpec& spec,
                             int num_numeric, int num_boolean) {
  const auto numeric_ok = [num_numeric](int column) {
    return 0 <= column && column < num_numeric;
  };
  if (spec.num_targets != num_boolean) {
    return Status::InvalidArgument(
        "scan request num_targets does not match partition");
  }
  for (const bucketing::CountChannel& channel : spec.channels) {
    if (!numeric_ok(channel.column)) {
      return Status::InvalidArgument("channel column out of range");
    }
    for (const int target : channel.sum_targets) {
      if (!numeric_ok(target)) {
        return Status::InvalidArgument("sum target column out of range");
      }
    }
  }
  for (const bucketing::GridChannel& channel : spec.grid_channels) {
    if (!numeric_ok(channel.x_column) || !numeric_ok(channel.y_column)) {
      return Status::InvalidArgument("grid axis column out of range");
    }
    if (static_cast<int64_t>(channel.x_boundaries->num_buckets()) *
            channel.y_boundaries->num_buckets() >
        std::numeric_limits<int32_t>::max()) {
      return Status::InvalidArgument("grid cell count overflows int32");
    }
  }
  for (const std::vector<int>& condition : spec.conditions) {
    for (const int column : condition) {
      if (column < 0 || column >= num_boolean) {
        return Status::InvalidArgument("condition column out of range");
      }
    }
  }
  // Refuse specs whose serialized partial could never fit a reply frame,
  // before allocating multi-GB accumulators (the daemon must answer with
  // an error frame, never die on bad_alloc or the frame-size CHECK).
  if (EstimateReplyBytes(spec) > kMaxReplyBytes) {
    return Status::InvalidArgument(
        "scan result would exceed the reply frame size");
  }
  return Status::Ok();
}

/// Runs one decoded scan request; returns the kScanResult payload or an
/// error to be shipped back as a kError frame.
Status ServeScanRequest(std::span<const uint8_t> request,
                        std::vector<uint8_t>* reply) {
  Result<ScanRequestFrame> frame = DecodeScanRequest(request);
  if (!frame.ok()) return frame.status();
  Result<std::unique_ptr<storage::PagedFileBatchSource>> source =
      storage::PagedFileBatchSource::Open(frame.value().partition_path,
                                          frame.value().batch_rows,
                                          frame.value().read_mode);
  if (!source.ok()) return source.status();
  OPTRULES_RETURN_IF_ERROR(ValidateSpecForSource(
      frame.value().spec, source.value()->num_numeric(),
      source.value()->num_boolean()));
  // The worker's partial is the serial reference chain (pool == nullptr):
  // a pure function of (partition file, spec), so any worker count -- and
  // the in-process worker -- produces bit-identical partials.
  bucketing::MultiCountPlan plan(frame.value().spec);
  bucketing::ExecuteMultiCount(*source.value(), &plan, nullptr);
  // Readers are gone once ExecuteMultiCount returns, so the source's
  // counters are final. Only pages_skipped travels back: buffer-pool hits
  // happen in this process and mean nothing to the coordinator.
  const storage::BatchSourceStats stats = source.value()->SourceStats();
  reply->push_back(static_cast<uint8_t>(FrameKind::kScanResult));
  bytes::AppendScalar<uint64_t>(
      reply, static_cast<uint64_t>(stats.pages_skipped));
  plan.AppendPartialState(reply);
  return Status::Ok();
}

}  // namespace

int RunWorkerLoop(int in_fd, int out_fd) {
  std::vector<uint8_t> request;
  std::vector<uint8_t> reply;
  while (true) {
    const Status read = ReadFrame(in_fd, &request);
    if (read.code() == StatusCode::kNotFound) return 0;  // clean EOF
    if (!read.ok()) return 1;
    const FrameKind kind = request.empty()
                               ? FrameKind::kShutdown
                               : static_cast<FrameKind>(request[0]);
    if (kind == FrameKind::kShutdown) return 0;
    reply.clear();
    if (kind != FrameKind::kScanRequest) {
      EncodeErrorFrame(
          Status::InvalidArgument("unexpected frame kind"), &reply);
    } else {
      const Status served = ServeScanRequest(request, &reply);
      if (!served.ok()) {
        reply.clear();
        EncodeErrorFrame(served, &reply);
      }
    }
    if (!WriteFrame(out_fd, reply).ok()) return 1;
  }
}

}  // namespace optrules::dist
