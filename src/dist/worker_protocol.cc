#include "dist/worker_protocol.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include "bucketing/counting.h"
#include "bucketing/parallel_count.h"
#include "common/bytes.h"
#include "common/env.h"
#include "dist/wire.h"
#include "storage/columnar_batch.h"

namespace optrules::dist {

namespace {

/// Conservative upper estimate of the partial-state reply size: the
/// dominant per-bucket / per-cell arrays (u, v planes, min/max, sum +
/// compensation pairs) at 8 bytes per slot, plus a small per-array
/// overhead. Used to refuse specs whose reply could never fit a frame
/// BEFORE any accumulator is allocated.
uint64_t EstimateReplyBytes(const bucketing::MultiCountSpec& spec) {
  uint64_t bytes = 64;
  for (const bucketing::CountChannel& channel : spec.channels) {
    const auto buckets =
        static_cast<uint64_t>(channel.boundaries->num_buckets());
    const uint64_t rows = 3 +
                          (channel.count_targets
                               ? static_cast<uint64_t>(spec.num_targets)
                               : 0) +
                          2 * channel.sum_targets.size();
    bytes += 64 + rows * (8 + buckets * 8);
  }
  for (const bucketing::GridChannel& channel : spec.grid_channels) {
    const uint64_t cells =
        static_cast<uint64_t>(channel.x_boundaries->num_buckets()) *
        static_cast<uint64_t>(channel.y_boundaries->num_buckets());
    bytes += 64 + (1 + static_cast<uint64_t>(spec.num_targets)) *
                      (8 + cells * 8);
  }
  return bytes;
}

/// Frames are capped at 1 GiB (wire.cc); leave headroom for overhead.
constexpr uint64_t kMaxReplyBytes = 1ull << 29;  // 512 MiB

/// Validates every column reference of a decoded spec against the opened
/// partition's attribute counts. ExecuteMultiCount enforces the same
/// invariants with CHECKs, but a daemon must answer a corrupt or
/// mis-addressed frame with an error frame, not a process abort.
Status ValidateSpecForSource(const bucketing::MultiCountSpec& spec,
                             int num_numeric, int num_boolean) {
  const auto numeric_ok = [num_numeric](int column) {
    return 0 <= column && column < num_numeric;
  };
  if (spec.num_targets != num_boolean) {
    return Status::InvalidArgument(
        "scan request num_targets does not match partition");
  }
  for (const bucketing::CountChannel& channel : spec.channels) {
    if (!numeric_ok(channel.column)) {
      return Status::InvalidArgument("channel column out of range");
    }
    for (const int target : channel.sum_targets) {
      if (!numeric_ok(target)) {
        return Status::InvalidArgument("sum target column out of range");
      }
    }
  }
  for (const bucketing::GridChannel& channel : spec.grid_channels) {
    if (!numeric_ok(channel.x_column) || !numeric_ok(channel.y_column)) {
      return Status::InvalidArgument("grid axis column out of range");
    }
    if (static_cast<int64_t>(channel.x_boundaries->num_buckets()) *
            channel.y_boundaries->num_buckets() >
        std::numeric_limits<int32_t>::max()) {
      return Status::InvalidArgument("grid cell count overflows int32");
    }
  }
  for (const std::vector<int>& condition : spec.conditions) {
    for (const int column : condition) {
      if (column < 0 || column >= num_boolean) {
        return Status::InvalidArgument("condition column out of range");
      }
    }
  }
  // Refuse specs whose serialized partial could never fit a reply frame,
  // before allocating multi-GB accumulators (the daemon must answer with
  // an error frame, never die on bad_alloc or the frame-size CHECK).
  if (EstimateReplyBytes(spec) > kMaxReplyBytes) {
    return Status::InvalidArgument(
        "scan result would exceed the reply frame size");
  }
  return Status::Ok();
}

// ------------------------------------------------------ fault hooks ----

/// One armed fault, parsed from OPTRULES_WORKERD_FAULT (see the header
/// for the grammar). Fires once at scan-request ordinal `at_request`.
struct WorkerFault {
  enum class Kind {
    kNone,
    kCrashBeforeReply,
    kCrashMidFrame,
    kGarbageFrame,
    kErrorFrame,
    kStall,
    kHang,
  };
  Kind kind = Kind::kNone;
  int64_t sleep_ms = 0;
  int64_t at_request = 0;
};

/// `rotate` mode: atomically increment the counter file (flock'd text
/// integer) to obtain this daemon's unique spawn ordinal. -1 = no counter
/// configured; rotation stays inert.
int64_t ClaimRotationOrdinal() {
  const char* path = std::getenv("OPTRULES_WORKERD_FAULT_COUNTER");
  if (path == nullptr || path[0] == '\0') return -1;
  const int fd = ::open(path, O_RDWR | O_CREAT, 0644);
  if (fd < 0) return -1;
  if (::flock(fd, LOCK_EX) != 0) {
    ::close(fd);
    return -1;
  }
  char buffer[32] = {0};
  const ssize_t got = ::pread(fd, buffer, sizeof(buffer) - 1, 0);
  const int64_t ordinal = got > 0 ? std::atoll(buffer) : 0;
  const std::string next = std::to_string(ordinal + 1);
  (void)::ftruncate(fd, 0);
  (void)::pwrite(fd, next.data(), next.size(), 0);
  ::close(fd);  // releases the flock
  return ordinal;
}

WorkerFault ParseWorkerFault(const char* spec) {
  WorkerFault fault;
  if (spec == nullptr) spec = std::getenv("OPTRULES_WORKERD_FAULT");
  if (spec == nullptr || spec[0] == '\0') return fault;
  std::string text(spec);
  if (text == "rotate") {
    // Sparse deterministic pattern keyed by spawn ordinal: ~2 in 5
    // daemons fault exactly once on their first scan request, so a
    // whole dist test suite survives on default retry/respawn budgets
    // while every failover path still fires.
    const int64_t ordinal = ClaimRotationOrdinal();
    if (ordinal < 0) return fault;
    if (ordinal % 5 == 1) {
      fault.kind = WorkerFault::Kind::kErrorFrame;
    } else if (ordinal % 5 == 3) {
      fault.kind = WorkerFault::Kind::kCrashBeforeReply;
    }
    return fault;
  }
  // The numeric pieces of a fault spec parse strictly (clean non-negative
  // integers only): "stall:50x" or "@2junk" used to half-parse via atoll
  // and arm a fault at the wrong ordinal. A malformed number now disarms
  // the whole spec with a warning -- a misconfigured test should fail
  // loudly as "no fault fired", never fault somewhere unexpected.
  const auto reject = [&text](const char* what) {
    std::fprintf(stderr,
                 "optrules_workerd: ignoring fault spec with malformed %s "
                 "(\"%s\" must use clean non-negative integers)\n",
                 what, text.c_str());
    return WorkerFault{};
  };
  const size_t at = text.find('@');
  if (at != std::string::npos) {
    const std::optional<uint64_t> ordinal =
        env::ParseNonNegativeInt(text.substr(at + 1));
    if (!ordinal.has_value()) return reject("@ordinal");
    fault.at_request = static_cast<int64_t>(*ordinal);
    text.resize(at);
  }
  const size_t colon = text.find(':');
  if (colon != std::string::npos) {
    const std::optional<uint64_t> sleep_ms =
        env::ParseNonNegativeInt(text.substr(colon + 1));
    if (!sleep_ms.has_value()) return reject(":milliseconds");
    fault.sleep_ms = static_cast<int64_t>(*sleep_ms);
    text.resize(colon);
  }
  if (text == "crash-before-reply") {
    fault.kind = WorkerFault::Kind::kCrashBeforeReply;
  } else if (text == "crash-mid-frame") {
    fault.kind = WorkerFault::Kind::kCrashMidFrame;
  } else if (text == "garbage-frame") {
    fault.kind = WorkerFault::Kind::kGarbageFrame;
  } else if (text == "error-frame") {
    fault.kind = WorkerFault::Kind::kErrorFrame;
  } else if (text == "stall") {
    fault.kind = WorkerFault::Kind::kStall;
  } else if (text == "hang") {
    fault.kind = WorkerFault::Kind::kHang;
  }
  if (fault.kind == WorkerFault::Kind::kNone) return fault;
  // A configured token file gates the fault: exactly one daemon of a
  // fleet can claim it (unlink is atomic), so respawned replacements run
  // clean and a faulty scan still converges deterministically.
  const char* token = std::getenv("OPTRULES_WORKERD_FAULT_TOKEN");
  if (token != nullptr && token[0] != '\0' && ::unlink(token) != 0) {
    fault.kind = WorkerFault::Kind::kNone;
  }
  return fault;
}

// -------------------------------------------------- keepalive writer ----

// The heartbeat thread and the main loop share the reply fd; the shared
// dist::FrameWriter (wire.h) keeps their frames from interleaving.

constexpr int64_t kHeartbeatIntervalMs = 100;

/// Ships kHeartbeat frames every interval while in scope (unless
/// suppressed -- the `hang` fault). Write failures are ignored: a
/// coordinator that already gave up on this daemon closed the pipe.
class ScopedHeartbeats {
 public:
  ScopedHeartbeats(FrameWriter* writer, bool suppressed) {
    if (suppressed) return;
    thread_ = std::thread([this, writer] {
      const uint8_t heartbeat[] = {
          static_cast<uint8_t>(FrameKind::kHeartbeat)};
      std::unique_lock<std::mutex> lock(mu_);
      while (!stop_) {
        if (cv_.wait_for(lock,
                         std::chrono::milliseconds(kHeartbeatIntervalMs),
                         [this] { return stop_; })) {
          break;
        }
        lock.unlock();
        (void)writer->Write(heartbeat);
        lock.lock();
      }
    });
  }

  ~ScopedHeartbeats() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Runs one decoded scan request; returns the kScanResult payload or an
/// error to be shipped back as a kError frame.
Status ServeScanRequest(std::span<const uint8_t> request,
                        std::vector<uint8_t>* reply) {
  Result<ScanRequestFrame> frame = DecodeScanRequest(request);
  if (!frame.ok()) return frame.status();
  Result<std::unique_ptr<storage::PagedFileBatchSource>> source =
      storage::PagedFileBatchSource::Open(frame.value().partition_path,
                                          frame.value().batch_rows,
                                          frame.value().read_mode);
  if (!source.ok()) return source.status();
  OPTRULES_RETURN_IF_ERROR(ValidateSpecForSource(
      frame.value().spec, source.value()->num_numeric(),
      source.value()->num_boolean()));
  // The worker's partial is the serial reference chain (pool == nullptr):
  // a pure function of (partition file, spec), so any worker count -- and
  // the in-process worker -- produces bit-identical partials.
  bucketing::MultiCountPlan plan(frame.value().spec);
  bucketing::ExecuteMultiCount(*source.value(), &plan, nullptr);
  // Readers are gone once ExecuteMultiCount returns, so the source's
  // counters are final. The full metric delta travels back: the
  // coordinator folds pages_skipped into the merged results and ships
  // cache and io-wait telemetry into its metrics registry, so a remote
  // scan is as observable as an in-process one.
  const storage::BatchSourceStats stats = source.value()->SourceStats();
  reply->push_back(static_cast<uint8_t>(FrameKind::kScanResult));
  WorkerScanStats wire_stats;
  wire_stats.pages_skipped = static_cast<uint64_t>(stats.pages_skipped);
  wire_stats.cache_hits = static_cast<uint64_t>(stats.cache_hits);
  wire_stats.cache_misses = static_cast<uint64_t>(stats.cache_misses);
  wire_stats.io_wait_seconds = stats.io_wait_seconds;
  AppendWorkerScanStats(wire_stats, reply);
  plan.AppendPartialState(reply);
  return Status::Ok();
}

/// Writes a deliberately truncated frame (length prefix larger than the
/// bytes that follow) so the peer observes "pipe closed mid-frame".
void WriteTruncatedFrame(int fd) {
  const uint32_t claimed = 64;
  uint8_t header[sizeof(claimed)];
  std::memcpy(header, &claimed, sizeof(claimed));
  (void)!::write(fd, header, sizeof(header));
  const uint8_t partial[8] = {0};
  (void)!::write(fd, partial, sizeof(partial));
}

}  // namespace

int RunWorkerLoop(int in_fd, int out_fd, const char* fault_spec) {
  // The heartbeat thread may race a coordinator that killed this daemon's
  // pipe; EPIPE must surface as a write error, not SIGPIPE death.
  std::signal(SIGPIPE, SIG_IGN);
  WorkerFault fault = ParseWorkerFault(fault_spec);
  FrameWriter writer(out_fd);
  std::vector<uint8_t> request;
  std::vector<uint8_t> reply;
  int64_t scan_requests = 0;
  while (true) {
    const Status read = ReadFrame(in_fd, &request);
    if (read.code() == StatusCode::kNotFound) return 0;  // clean EOF
    if (!read.ok()) return 1;
    const FrameKind kind = request.empty()
                               ? FrameKind::kShutdown
                               : static_cast<FrameKind>(request[0]);
    if (kind == FrameKind::kShutdown) return 0;
    if (kind == FrameKind::kPing) {
      const uint8_t pong[] = {static_cast<uint8_t>(FrameKind::kPong)};
      if (!writer.Write(pong).ok()) return 1;
      continue;
    }
    reply.clear();
    if (kind != FrameKind::kScanRequest) {
      EncodeErrorFrame(
          Status::InvalidArgument("unexpected frame kind"), &reply);
      if (!writer.Write(reply).ok()) return 1;
      continue;
    }
    const bool fault_now = fault.kind != WorkerFault::Kind::kNone &&
                           scan_requests == fault.at_request;
    ++scan_requests;
    {
      // Heartbeats cover the whole serve, injected sleeps included, so a
      // stalled straggler stays distinguishable from a hung daemon.
      ScopedHeartbeats heartbeats(
          &writer,
          /*suppressed=*/fault_now &&
              fault.kind == WorkerFault::Kind::kHang);
      if (fault_now) {
        switch (fault.kind) {
          case WorkerFault::Kind::kStall:
          case WorkerFault::Kind::kHang:
            std::this_thread::sleep_for(
                std::chrono::milliseconds(fault.sleep_ms));
            break;
          case WorkerFault::Kind::kCrashBeforeReply:
            // The genuine kill -9 mid-scan: the request was read, the
            // reply never comes, the pid dies without cleanup.
            (void)::raise(SIGKILL);
            break;
          case WorkerFault::Kind::kCrashMidFrame:
            WriteTruncatedFrame(out_fd);
            (void)::raise(SIGKILL);
            break;
          case WorkerFault::Kind::kGarbageFrame: {
            const uint8_t garbage[] = {0xEE, 0xBE, 0xEF};
            if (!writer.Write(garbage).ok()) return 1;
            fault.kind = WorkerFault::Kind::kNone;
            continue;
          }
          case WorkerFault::Kind::kErrorFrame: {
            reply.clear();
            EncodeErrorFrame(Status::Internal("injected worker fault"),
                             &reply);
            if (!writer.Write(reply).ok()) return 1;
            fault.kind = WorkerFault::Kind::kNone;
            continue;
          }
          case WorkerFault::Kind::kNone:
            break;
        }
        fault.kind = WorkerFault::Kind::kNone;  // every fault is one-shot
      }
      const Status served = ServeScanRequest(request, &reply);
      if (!served.ok()) {
        reply.clear();
        EncodeErrorFrame(served, &reply);
      }
    }  // heartbeats stop before the reply ships
    if (!writer.Write(reply).ok()) return 1;
  }
}

}  // namespace optrules::dist
