// Wire protocol of the distributed scan subsystem.
//
// Workers and the coordinator exchange length-prefixed frames over pipes:
//   [u32 payload length][payload]
// where payload[0] is a FrameKind byte. A scan request carries the
// partition file path, the reader parameters, and a self-contained
// MultiCountSpec (boundary cut points serialized by value, so the worker
// reconstructs bit-identical BucketBoundaries); a scan result carries the
// MultiCountPlan partial state (bucketing::AppendPartialState). All
// multi-byte values are native-endian: the protocol connects processes of
// one architecture (local pipes, or a homogeneous cluster).

#ifndef OPTRULES_DIST_WIRE_H_
#define OPTRULES_DIST_WIRE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bucketing/counting.h"
#include "common/status.h"
#include "storage/columnar_batch.h"

namespace optrules::dist {

/// First payload byte of every frame.
enum class FrameKind : uint8_t {
  kScanRequest = 1,  ///< coordinator -> worker: count one partition
  kScanResult = 2,   ///< worker -> coordinator: partial plan state
  kError = 3,        ///< worker -> coordinator: status code + message
  kShutdown = 4,     ///< coordinator -> worker: exit the loop
};

/// Writes one [length][payload] frame to `fd`, handling short writes.
Status WriteFrame(int fd, std::span<const uint8_t> payload);

/// Reads the next frame into *payload. A clean EOF at a frame boundary
/// returns NotFound (the peer closed the pipe); EOF mid-frame is
/// Corruption.
Status ReadFrame(int fd, std::vector<uint8_t>* payload);

/// A decoded scan request. `spec` points into `boundaries`, so the struct
/// is move-only and must outlive any plan built from the spec.
struct ScanRequestFrame {
  ScanRequestFrame() = default;
  ScanRequestFrame(ScanRequestFrame&&) = default;
  ScanRequestFrame& operator=(ScanRequestFrame&&) = default;
  ScanRequestFrame(const ScanRequestFrame&) = delete;
  ScanRequestFrame& operator=(const ScanRequestFrame&) = delete;

  std::string partition_path;
  int64_t batch_rows = storage::kDefaultBatchRows;
  storage::PagedReadMode read_mode =
      storage::PagedReadMode::kDoubleBuffered;
  /// Deserialized boundary objects, in first-use order; the spec's channel
  /// pointers reference these (stable across moves of the frame).
  std::vector<bucketing::BucketBoundaries> boundaries;
  bucketing::MultiCountSpec spec;
};

/// Encodes a kScanRequest payload. Every distinct BucketBoundaries
/// pointer across channels and grid axes is serialized once (by cut
/// points) and referenced by index, mirroring the plan's locate groups.
void EncodeScanRequest(const std::string& partition_path, int64_t batch_rows,
                       storage::PagedReadMode read_mode,
                       const bucketing::MultiCountSpec& spec,
                       std::vector<uint8_t>* out);

/// Decodes a kScanRequest payload (payload[0] must be kScanRequest).
Result<ScanRequestFrame> DecodeScanRequest(std::span<const uint8_t> payload);

/// Encodes a kError payload from a status.
void EncodeErrorFrame(const Status& status, std::vector<uint8_t>* out);

/// Decodes a kError payload back into the status it carried.
Status DecodeErrorFrame(std::span<const uint8_t> payload);

}  // namespace optrules::dist

#endif  // OPTRULES_DIST_WIRE_H_
