// Wire protocol of the distributed scan subsystem.
//
// Workers and the coordinator exchange length-prefixed frames over pipes:
//   [u32 payload length][payload]
// where payload[0] is a FrameKind byte. A scan request carries the
// partition file path, the reader parameters, and a self-contained
// MultiCountSpec (boundary cut points serialized by value, so the worker
// reconstructs bit-identical BucketBoundaries); a scan result carries the
// MultiCountPlan partial state (bucketing::AppendPartialState). All
// multi-byte values are native-endian: the protocol connects processes of
// one architecture (local pipes, or a homogeneous cluster).

#ifndef OPTRULES_DIST_WIRE_H_
#define OPTRULES_DIST_WIRE_H_

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "bucketing/counting.h"
#include "common/status.h"
#include "storage/columnar_batch.h"

namespace optrules::dist {

/// First payload byte of every frame.
enum class FrameKind : uint8_t {
  kScanRequest = 1,  ///< coordinator -> worker: count one partition
  kScanResult = 2,   ///< worker -> coordinator: partial plan state
  kError = 3,        ///< worker -> coordinator: status code + message
  kShutdown = 4,     ///< coordinator -> worker: exit the loop
  kPing = 5,         ///< coordinator -> worker: health check
  kPong = 6,         ///< worker -> coordinator: kPing acknowledgement
  kHeartbeat = 7,    ///< worker -> coordinator: still alive mid-scan
};

/// Writes one [length][payload] frame to `fd`, handling short writes.
///
/// NOT atomic across threads: two threads calling WriteFrame on one fd can
/// interleave mid-frame (the length prefix and payload are separate
/// write(2) calls, and large payloads take several), corrupting the
/// stream. Any connection written by more than one thread -- a worker
/// daemon's heartbeat thread, a serve-layer connection multiplexing
/// responder threads -- must serialize through a FrameWriter.
Status WriteFrame(int fd, std::span<const uint8_t> payload);

/// Serializes WriteFrame calls on one shared fd: the per-connection write
/// mutex of every multi-writer connection (daemon reply pipes, serve-layer
/// client sockets). Reads need no twin: each connection has exactly one
/// reader thread.
class FrameWriter {
 public:
  explicit FrameWriter(int fd) : fd_(fd) {}
  FrameWriter(const FrameWriter&) = delete;
  FrameWriter& operator=(const FrameWriter&) = delete;

  Status Write(std::span<const uint8_t> payload) {
    std::lock_guard<std::mutex> lock(mu_);
    return WriteFrame(fd_, payload);
  }

  int fd() const { return fd_; }

 private:
  int fd_;
  std::mutex mu_;
};

/// Reads the next frame into *payload. A clean EOF at a frame boundary
/// returns NotFound (the peer closed the pipe); EOF mid-frame is
/// Corruption.
Status ReadFrame(int fd, std::vector<uint8_t>* payload);

/// Timeouts for ReadFrameTimed, both in milliseconds, 0 = unlimited.
struct FrameTimeouts {
  /// Maximum silent gap between any two bytes. A worker mid-scan ships a
  /// kHeartbeat frame every ~100 ms, so a gap this long means the peer is
  /// hung (not merely slow): the read fails with DeadlineExceeded.
  int64_t liveness_ms = 0;
  /// Maximum total time for this frame, heartbeats included: the
  /// per-partition deadline. Expiry fails with DeadlineExceeded.
  int64_t total_ms = 0;
};

/// ReadFrame with poll()-based timeouts: distinguishes a hung peer
/// (liveness_ms of silence) and an overall deadline (total_ms) from slow
/// but live scans. Either expiry returns DeadlineExceeded and leaves the
/// stream mid-frame (the connection must be considered unusable).
Status ReadFrameTimed(int fd, std::vector<uint8_t>* payload,
                      const FrameTimeouts& timeouts);

/// A decoded scan request. `spec` points into `boundaries`, so the struct
/// is move-only and must outlive any plan built from the spec.
struct ScanRequestFrame {
  ScanRequestFrame() = default;
  ScanRequestFrame(ScanRequestFrame&&) = default;
  ScanRequestFrame& operator=(ScanRequestFrame&&) = default;
  ScanRequestFrame(const ScanRequestFrame&) = delete;
  ScanRequestFrame& operator=(const ScanRequestFrame&) = delete;

  std::string partition_path;
  int64_t batch_rows = storage::kDefaultBatchRows;
  storage::PagedReadMode read_mode =
      storage::PagedReadMode::kDoubleBuffered;
  /// Deserialized boundary objects, in first-use order; the spec's channel
  /// pointers reference these (stable across moves of the frame).
  std::vector<bucketing::BucketBoundaries> boundaries;
  bucketing::MultiCountSpec spec;
};

/// Encodes a kScanRequest payload. Every distinct BucketBoundaries
/// pointer across channels and grid axes is serialized once (by cut
/// points) and referenced by index, mirroring the plan's locate groups.
void EncodeScanRequest(const std::string& partition_path, int64_t batch_rows,
                       storage::PagedReadMode read_mode,
                       const bucketing::MultiCountSpec& spec,
                       std::vector<uint8_t>* out);

/// Decodes a kScanRequest payload (payload[0] must be kScanRequest).
Result<ScanRequestFrame> DecodeScanRequest(std::span<const uint8_t> payload);

/// Encodes a kError payload from a status.
void EncodeErrorFrame(const Status& status, std::vector<uint8_t>* out);

/// Decodes a kError payload back into the status it carried.
Status DecodeErrorFrame(std::span<const uint8_t> payload);

/// Worker-side metric deltas of one partition scan, shipped in the
/// kScanResult header (between the kind byte and the partial plan state)
/// and folded into the coordinator's scan stats and metrics registry.
/// Fixed-size encoding so the partial-state offset stays static.
struct WorkerScanStats {
  uint64_t pages_skipped = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double io_wait_seconds = 0.0;
};

/// Encoded size of WorkerScanStats inside a kScanResult payload.
inline constexpr size_t kWorkerScanStatsBytes =
    3 * sizeof(uint64_t) + sizeof(double);

/// Appends the fixed-size WorkerScanStats header encoding.
void AppendWorkerScanStats(const WorkerScanStats& stats,
                           std::vector<uint8_t>* out);

/// Decodes the WorkerScanStats header written by AppendWorkerScanStats
/// from `bytes` (must hold at least kWorkerScanStatsBytes).
Status ReadWorkerScanStats(std::span<const uint8_t> bytes,
                           WorkerScanStats* stats);

}  // namespace optrules::dist

#endif  // OPTRULES_DIST_WIRE_H_
