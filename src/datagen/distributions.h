// Value distributions for synthetic workloads.
//
// The paper evaluates on "randomly generated test data"; we make the
// generator explicit and seedable, with the distribution families commonly
// used for numeric database columns (uniform, gaussian, exponential,
// lognormal, Zipf over ranks, and finite mixtures for multi-modal columns
// such as account balances).

#ifndef OPTRULES_DATAGEN_DISTRIBUTIONS_H_
#define OPTRULES_DATAGEN_DISTRIBUTIONS_H_

#include <memory>
#include <vector>

#include "common/rng.h"

namespace optrules::datagen {

/// A real-valued distribution sampled with an explicit Rng.
class Distribution {
 public:
  virtual ~Distribution() = default;
  /// Draws one value.
  virtual double Sample(Rng& rng) const = 0;
};

/// Uniform on [lo, hi).
class UniformDistribution : public Distribution {
 public:
  UniformDistribution(double lo, double hi);
  double Sample(Rng& rng) const override;

 private:
  double lo_;
  double hi_;
};

/// Normal with the given mean and standard deviation.
class GaussianDistribution : public Distribution {
 public:
  GaussianDistribution(double mean, double stddev);
  double Sample(Rng& rng) const override;

 private:
  double mean_;
  double stddev_;
};

/// Exponential with the given rate (mean = 1/rate).
class ExponentialDistribution : public Distribution {
 public:
  explicit ExponentialDistribution(double rate);
  double Sample(Rng& rng) const override;

 private:
  double rate_;
};

/// Lognormal: exp(N(mu, sigma)).
class LogNormalDistribution : public Distribution {
 public:
  LogNormalDistribution(double mu, double sigma);
  double Sample(Rng& rng) const override;

 private:
  double mu_;
  double sigma_;
};

/// Zipf over ranks 1..n with exponent s: Pr(k) proportional to k^-s.
/// Sampling is O(log n) via a precomputed cumulative table.
class ZipfDistribution : public Distribution {
 public:
  ZipfDistribution(int64_t n, double s);
  double Sample(Rng& rng) const override;

 private:
  std::vector<double> cumulative_;
};

/// Finite mixture of component distributions with the given weights.
class MixtureDistribution : public Distribution {
 public:
  /// Components and weights must be equal-length and non-empty; weights are
  /// normalized internally.
  MixtureDistribution(std::vector<std::unique_ptr<Distribution>> components,
                      std::vector<double> weights);
  double Sample(Rng& rng) const override;

 private:
  std::vector<std::unique_ptr<Distribution>> components_;
  std::vector<double> cumulative_weights_;
};

/// Tagged parameter block describing a distribution, so that generator
/// configs stay copyable value types.
struct DistSpec {
  enum class Kind {
    kUniform,      ///< a = lo, b = hi
    kGaussian,     ///< a = mean, b = stddev
    kExponential,  ///< a = rate
    kLogNormal,    ///< a = mu, b = sigma
    kZipf,         ///< a = n (ranks), b = s (exponent)
  };
  Kind kind = Kind::kUniform;
  double a = 0.0;
  double b = 1.0;

  static DistSpec Uniform(double lo, double hi) {
    return {Kind::kUniform, lo, hi};
  }
  static DistSpec Gaussian(double mean, double stddev) {
    return {Kind::kGaussian, mean, stddev};
  }
  static DistSpec Exponential(double rate) {
    return {Kind::kExponential, rate, 0.0};
  }
  static DistSpec LogNormal(double mu, double sigma) {
    return {Kind::kLogNormal, mu, sigma};
  }
  static DistSpec Zipf(double n, double s) { return {Kind::kZipf, n, s}; }
};

/// Instantiates the distribution described by `spec`.
std::unique_ptr<Distribution> MakeDistribution(const DistSpec& spec);

}  // namespace optrules::datagen

#endif  // OPTRULES_DATAGEN_DISTRIBUTIONS_H_
