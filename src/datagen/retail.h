// Retail-transactions workload.
//
// Basket-style data in the spirit of the paper's Example 2.1: Boolean item
// attributes (Pizza, Coke, Potato, ...) plus numeric attributes
// (TotalSpend, BasketSize, HourOfDay) so that numeric-range rules such as
// `(TotalSpend in I) => (Coke = yes)` are minable. Item co-occurrence and a
// spend band with elevated snack purchases are planted.

#ifndef OPTRULES_DATAGEN_RETAIL_H_
#define OPTRULES_DATAGEN_RETAIL_H_

#include <cstdint>

#include "common/rng.h"
#include "storage/relation.h"

namespace optrules::datagen {

/// Parameters of the retail workload.
struct RetailConfig {
  int64_t num_transactions = 100000;
  double snack_spend_lo = 15.0;   ///< spend band with elevated Coke rate
  double snack_spend_hi = 45.0;
  double coke_prob_inside = 0.6;
  double coke_prob_outside = 0.15;
};

/// Attribute order of the generated relation.
///   numeric: TotalSpend(0), BasketSize(1), HourOfDay(2)
///   boolean: Pizza(0), Coke(1), Potato(2), Beer(3), Diapers(4)
storage::Relation GenerateRetail(const RetailConfig& config, Rng& rng);

}  // namespace optrules::datagen

#endif  // OPTRULES_DATAGEN_RETAIL_H_
