// Generic synthetic table generator.
//
// Reproduces the paper's Section 6.1 test setup (8 numeric + 8 Boolean
// attributes, 72 bytes/tuple) and generalizes it: per-attribute
// distributions, baseline Boolean probabilities, and optional planted
// numeric->Boolean rules. Tables can be materialized in memory or streamed
// directly to a PagedFile when they exceed memory.

#ifndef OPTRULES_DATAGEN_TABLE_GENERATOR_H_
#define OPTRULES_DATAGEN_TABLE_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "datagen/correlation.h"
#include "datagen/distributions.h"
#include "storage/relation.h"

namespace optrules::datagen {

/// Configuration of a synthetic table.
struct TableConfig {
  int64_t num_rows = 0;
  int num_numeric = 8;
  int num_boolean = 8;
  /// Distribution per numeric attribute; missing entries default to
  /// Uniform(0, 1e6).
  std::vector<DistSpec> numeric_dists;
  /// Baseline P(true) per Boolean attribute; missing entries default 0.3.
  std::vector<double> boolean_probs;
  /// Planted rules; each overwrites its Boolean column as a function of its
  /// numeric column (applied after baseline fill, in order).
  std::vector<PlantedRule> planted_rules;
};

/// The paper's Section 6.1 configuration: 8 numeric (uniform) + 8 Boolean
/// attributes, 72 bytes per tuple in the PagedFile layout.
TableConfig PaperSection61Config(int64_t num_rows);

/// Generates the table in memory.
storage::Relation GenerateTable(const TableConfig& config, Rng& rng);

/// Streams a generated table straight to a PagedFile at `path`, using O(1)
/// memory in the number of rows. Planted rules are honored row-by-row.
Status GenerateTableToFile(const TableConfig& config, Rng& rng,
                           const std::string& path);

}  // namespace optrules::datagen

#endif  // OPTRULES_DATAGEN_TABLE_GENERATOR_H_
