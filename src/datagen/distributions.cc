#include "datagen/distributions.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace optrules::datagen {

UniformDistribution::UniformDistribution(double lo, double hi)
    : lo_(lo), hi_(hi) {
  OPTRULES_CHECK(lo <= hi);
}

double UniformDistribution::Sample(Rng& rng) const {
  return rng.NextUniform(lo_, hi_);
}

GaussianDistribution::GaussianDistribution(double mean, double stddev)
    : mean_(mean), stddev_(stddev) {
  OPTRULES_CHECK(stddev >= 0.0);
}

double GaussianDistribution::Sample(Rng& rng) const {
  return mean_ + stddev_ * rng.NextGaussian();
}

ExponentialDistribution::ExponentialDistribution(double rate) : rate_(rate) {
  OPTRULES_CHECK(rate > 0.0);
}

double ExponentialDistribution::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  while (u <= 0.0) u = rng.NextDouble();
  return -std::log(u) / rate_;
}

LogNormalDistribution::LogNormalDistribution(double mu, double sigma)
    : mu_(mu), sigma_(sigma) {
  OPTRULES_CHECK(sigma >= 0.0);
}

double LogNormalDistribution::Sample(Rng& rng) const {
  return std::exp(mu_ + sigma_ * rng.NextGaussian());
}

ZipfDistribution::ZipfDistribution(int64_t n, double s) {
  OPTRULES_CHECK(n >= 1);
  OPTRULES_CHECK(s >= 0.0);
  cumulative_.resize(static_cast<size_t>(n));
  double total = 0.0;
  for (int64_t k = 1; k <= n; ++k) {
    total += std::pow(static_cast<double>(k), -s);
    cumulative_[static_cast<size_t>(k - 1)] = total;
  }
  for (double& c : cumulative_) c /= total;
  cumulative_.back() = 1.0;
}

double ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it =
      std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<double>(it - cumulative_.begin()) + 1.0;
}

MixtureDistribution::MixtureDistribution(
    std::vector<std::unique_ptr<Distribution>> components,
    std::vector<double> weights)
    : components_(std::move(components)) {
  OPTRULES_CHECK(!components_.empty());
  OPTRULES_CHECK(components_.size() == weights.size());
  double total = 0.0;
  for (double w : weights) {
    OPTRULES_CHECK(w >= 0.0);
    total += w;
  }
  OPTRULES_CHECK(total > 0.0);
  cumulative_weights_.resize(weights.size());
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i] / total;
    cumulative_weights_[i] = acc;
  }
  cumulative_weights_.back() = 1.0;
}

double MixtureDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cumulative_weights_.begin(),
                                   cumulative_weights_.end(), u);
  const size_t index =
      static_cast<size_t>(it - cumulative_weights_.begin());
  return components_[index]->Sample(rng);
}

std::unique_ptr<Distribution> MakeDistribution(const DistSpec& spec) {
  switch (spec.kind) {
    case DistSpec::Kind::kUniform:
      return std::make_unique<UniformDistribution>(spec.a, spec.b);
    case DistSpec::Kind::kGaussian:
      return std::make_unique<GaussianDistribution>(spec.a, spec.b);
    case DistSpec::Kind::kExponential:
      return std::make_unique<ExponentialDistribution>(spec.a);
    case DistSpec::Kind::kLogNormal:
      return std::make_unique<LogNormalDistribution>(spec.a, spec.b);
    case DistSpec::Kind::kZipf:
      return std::make_unique<ZipfDistribution>(
          static_cast<int64_t>(spec.a), spec.b);
  }
  OPTRULES_CHECK(false);
  return nullptr;
}

}  // namespace optrules::datagen
