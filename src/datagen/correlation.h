// Planted numeric-to-Boolean correlations.
//
// To check that the miner recovers *correct* rules (not just fast ones), we
// plant a ground-truth association: inside a chosen range of a numeric
// attribute the Boolean condition holds with probability `prob_inside`,
// outside with `prob_outside`. The optimized-confidence rule over fine
// buckets should then recover (approximately) the planted range.

#ifndef OPTRULES_DATAGEN_CORRELATION_H_
#define OPTRULES_DATAGEN_CORRELATION_H_

#include <cstdint>

#include "common/rng.h"
#include "storage/relation.h"

namespace optrules::datagen {

/// Ground truth for one planted rule `(A in [lo, hi]) => C`.
struct PlantedRule {
  int numeric_attr = 0;   ///< numeric column index of A
  int boolean_attr = 0;   ///< boolean column index of C
  double lo = 0.0;        ///< planted range lower bound (inclusive)
  double hi = 0.0;        ///< planted range upper bound (inclusive)
  double prob_inside = 0.9;   ///< P(C = yes | A in [lo, hi])
  double prob_outside = 0.1;  ///< P(C = yes | A outside)
};

/// Empirical support/confidence of a fixed range, measured on data.
struct RangeStats {
  int64_t tuples_in_range = 0;  ///< count of rows with A in range
  int64_t hits_in_range = 0;    ///< ... of those, rows meeting C
  double support = 0.0;         ///< tuples_in_range / N
  double confidence = 0.0;      ///< hits_in_range / tuples_in_range
};

/// Fills the rule's Boolean column of `relation` as a function of its
/// numeric column according to `rule`. The relation must already contain
/// the numeric data; any previous contents of the Boolean column are
/// overwritten.
void ApplyPlantedRule(const PlantedRule& rule, Rng& rng,
                      storage::Relation* relation);

/// Measures the actual support and confidence of `[lo, hi] => C` on the
/// relation (used by tests to compare mined output against ground truth).
RangeStats MeasureRange(const storage::Relation& relation, int numeric_attr,
                        int boolean_attr, double lo, double hi);

}  // namespace optrules::datagen

#endif  // OPTRULES_DATAGEN_CORRELATION_H_
