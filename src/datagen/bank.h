// Bank-customers workload.
//
// The paper's running example: customers with Age, Balance,
// CheckingAccount and SavingAccount numeric attributes and CardLoan /
// AutoWithdrawal / DirectMailResponse Boolean services. CardLoan is planted
// to be strongly associated with a mid Balance range (the paper's
// `(Balance in I) => (CardLoan = yes)` motivating rule), and SavingAccount
// is elevated for a band of CheckingAccount (the Section 5 average-operator
// example).

#ifndef OPTRULES_DATAGEN_BANK_H_
#define OPTRULES_DATAGEN_BANK_H_

#include <cstdint>

#include "common/rng.h"
#include "storage/relation.h"

namespace optrules::datagen {

/// Parameters of the bank workload; the defaults match the paper's
/// narrative (balances in a wide skewed range, card-loan lift in a middle
/// balance band).
struct BankConfig {
  int64_t num_customers = 100000;
  double card_loan_range_lo = 3000.0;   ///< planted CardLoan balance band
  double card_loan_range_hi = 10000.0;
  double card_loan_prob_inside = 0.65;
  double card_loan_prob_outside = 0.08;
  double rich_checking_lo = 1000.0;  ///< checking band with high savings
  double rich_checking_hi = 3000.0;
  double rich_saving_mean = 25000.0;
  double base_saving_mean = 8000.0;
};

/// Attribute order of the generated relation.
///   numeric: Age(0), Balance(1), CheckingAccount(2), SavingAccount(3)
///   boolean: CardLoan(0), AutoWithdrawal(1), DirectMailResponse(2)
storage::Relation GenerateBankCustomers(const BankConfig& config, Rng& rng);

}  // namespace optrules::datagen

#endif  // OPTRULES_DATAGEN_BANK_H_
