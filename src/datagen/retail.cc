#include "datagen/retail.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "storage/schema.h"

namespace optrules::datagen {

storage::Relation GenerateRetail(const RetailConfig& config, Rng& rng) {
  OPTRULES_CHECK(config.num_transactions >= 0);
  Result<storage::Schema> schema = storage::Schema::Create({
      {"TotalSpend", storage::AttrKind::kNumeric},
      {"BasketSize", storage::AttrKind::kNumeric},
      {"HourOfDay", storage::AttrKind::kNumeric},
      {"Pizza", storage::AttrKind::kBoolean},
      {"Coke", storage::AttrKind::kBoolean},
      {"Potato", storage::AttrKind::kBoolean},
      {"Beer", storage::AttrKind::kBoolean},
      {"Diapers", storage::AttrKind::kBoolean},
  });
  OPTRULES_CHECK(schema.ok());
  storage::Relation relation(std::move(schema).value());
  relation.Reserve(config.num_transactions);

  double numeric_row[3];
  uint8_t boolean_row[5];
  for (int64_t i = 0; i < config.num_transactions; ++i) {
    const double spend = std::exp(3.0 + 0.9 * rng.NextGaussian());
    const double basket =
        std::max(1.0, std::round(spend / 8.0 + 2.0 * rng.NextGaussian()));
    // Shopping hours concentrated in the evening.
    const double hour = std::clamp(
        14.0 + 4.5 * rng.NextGaussian(), 0.0, 23.0);

    const bool pizza = rng.NextBernoulli(0.25);
    // Planted spend band with elevated Coke rate; pizza adds lift too
    // (the paper's Pizza & Coke => Potato association).
    const bool snack_band =
        config.snack_spend_lo <= spend && spend <= config.snack_spend_hi;
    double coke_p =
        snack_band ? config.coke_prob_inside : config.coke_prob_outside;
    if (pizza) coke_p = std::min(1.0, coke_p + 0.25);
    const bool coke = rng.NextBernoulli(coke_p);
    // Potato correlates with pizza-and-coke baskets.
    const double potato_p = (pizza && coke) ? 0.55 : 0.12;
    // Beer peaks for evening hours; Diapers independent low base rate.
    const double beer_p = hour >= 17.0 ? 0.3 : 0.1;

    numeric_row[0] = spend;
    numeric_row[1] = basket;
    numeric_row[2] = hour;
    boolean_row[0] = pizza ? 1 : 0;
    boolean_row[1] = coke ? 1 : 0;
    boolean_row[2] = rng.NextBernoulli(potato_p) ? 1 : 0;
    boolean_row[3] = rng.NextBernoulli(beer_p) ? 1 : 0;
    boolean_row[4] = rng.NextBernoulli(0.08) ? 1 : 0;
    relation.AppendRow(numeric_row, boolean_row);
  }
  return relation;
}

}  // namespace optrules::datagen
