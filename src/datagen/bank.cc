#include "datagen/bank.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "storage/schema.h"

namespace optrules::datagen {

storage::Relation GenerateBankCustomers(const BankConfig& config, Rng& rng) {
  OPTRULES_CHECK(config.num_customers >= 0);
  Result<storage::Schema> schema = storage::Schema::Create({
      {"Age", storage::AttrKind::kNumeric},
      {"Balance", storage::AttrKind::kNumeric},
      {"CheckingAccount", storage::AttrKind::kNumeric},
      {"SavingAccount", storage::AttrKind::kNumeric},
      {"CardLoan", storage::AttrKind::kBoolean},
      {"AutoWithdrawal", storage::AttrKind::kBoolean},
      {"DirectMailResponse", storage::AttrKind::kBoolean},
  });
  OPTRULES_CHECK(schema.ok());
  storage::Relation relation(std::move(schema).value());
  relation.Reserve(config.num_customers);

  double numeric_row[4];
  uint8_t boolean_row[3];
  for (int64_t i = 0; i < config.num_customers; ++i) {
    // Age: truncated gaussian around 42, clamped to [18, 95].
    const double age =
        std::clamp(42.0 + 14.0 * rng.NextGaussian(), 18.0, 95.0);
    // Balance: lognormal, heavy right tail typical of account balances.
    const double balance = std::exp(8.2 + 1.1 * rng.NextGaussian());
    // CheckingAccount: mixture of low day-to-day accounts and higher ones.
    const double checking = rng.NextBernoulli(0.7)
                                ? std::exp(6.5 + 0.8 * rng.NextGaussian())
                                : std::exp(8.0 + 0.6 * rng.NextGaussian());
    // SavingAccount: elevated for the "rich checking band" (Section 5).
    const bool rich_band = config.rich_checking_lo <= checking &&
                           checking <= config.rich_checking_hi;
    const double saving_mean =
        rich_band ? config.rich_saving_mean : config.base_saving_mean;
    const double saving =
        std::max(0.0, saving_mean * (0.4 + 1.2 * rng.NextDouble()) +
                          2000.0 * rng.NextGaussian());

    // CardLoan: planted association with the Balance band.
    const bool loan_band = config.card_loan_range_lo <= balance &&
                           balance <= config.card_loan_range_hi;
    const double loan_p = loan_band ? config.card_loan_prob_inside
                                    : config.card_loan_prob_outside;
    // AutoWithdrawal: mildly age-dependent.
    const double auto_p = age < 35.0 ? 0.55 : 0.35;
    // DirectMailResponse: rare, balance-independent noise target.
    const double mail_p = 0.05;

    numeric_row[0] = age;
    numeric_row[1] = balance;
    numeric_row[2] = checking;
    numeric_row[3] = saving;
    boolean_row[0] = rng.NextBernoulli(loan_p) ? 1 : 0;
    boolean_row[1] = rng.NextBernoulli(auto_p) ? 1 : 0;
    boolean_row[2] = rng.NextBernoulli(mail_p) ? 1 : 0;
    relation.AppendRow(numeric_row, boolean_row);
  }
  return relation;
}

}  // namespace optrules::datagen
