#include "datagen/table_generator.h"

#include <memory>

#include "common/logging.h"
#include "storage/paged_file.h"

namespace optrules::datagen {

namespace {

/// Resolved per-attribute generation state shared by both code paths.
struct ResolvedConfig {
  std::vector<std::unique_ptr<Distribution>> numeric_dists;
  std::vector<double> boolean_probs;
  // planted_for_boolean[b] = index into config.planted_rules, or -1.
  std::vector<int> planted_for_boolean;
};

ResolvedConfig Resolve(const TableConfig& config) {
  OPTRULES_CHECK(config.num_rows >= 0);
  OPTRULES_CHECK(config.num_numeric >= 0 && config.num_boolean >= 0);
  ResolvedConfig resolved;
  for (int i = 0; i < config.num_numeric; ++i) {
    const DistSpec spec = i < static_cast<int>(config.numeric_dists.size())
                              ? config.numeric_dists[static_cast<size_t>(i)]
                              : DistSpec::Uniform(0.0, 1e6);
    resolved.numeric_dists.push_back(MakeDistribution(spec));
  }
  for (int i = 0; i < config.num_boolean; ++i) {
    const double p = i < static_cast<int>(config.boolean_probs.size())
                         ? config.boolean_probs[static_cast<size_t>(i)]
                         : 0.3;
    OPTRULES_CHECK(0.0 <= p && p <= 1.0);
    resolved.boolean_probs.push_back(p);
  }
  resolved.planted_for_boolean.assign(
      static_cast<size_t>(config.num_boolean), -1);
  for (size_t r = 0; r < config.planted_rules.size(); ++r) {
    const PlantedRule& rule = config.planted_rules[r];
    OPTRULES_CHECK(0 <= rule.numeric_attr &&
                   rule.numeric_attr < config.num_numeric);
    OPTRULES_CHECK(0 <= rule.boolean_attr &&
                   rule.boolean_attr < config.num_boolean);
    resolved.planted_for_boolean[static_cast<size_t>(rule.boolean_attr)] =
        static_cast<int>(r);
  }
  return resolved;
}

void GenerateRow(const TableConfig& config, const ResolvedConfig& resolved,
                 Rng& rng, std::vector<double>* numeric_row,
                 std::vector<uint8_t>* boolean_row) {
  for (int i = 0; i < config.num_numeric; ++i) {
    (*numeric_row)[static_cast<size_t>(i)] =
        resolved.numeric_dists[static_cast<size_t>(i)]->Sample(rng);
  }
  for (int b = 0; b < config.num_boolean; ++b) {
    const int planted = resolved.planted_for_boolean[static_cast<size_t>(b)];
    double p = resolved.boolean_probs[static_cast<size_t>(b)];
    if (planted >= 0) {
      const PlantedRule& rule =
          config.planted_rules[static_cast<size_t>(planted)];
      const double value = (*numeric_row)[static_cast<size_t>(
          rule.numeric_attr)];
      const bool inside = rule.lo <= value && value <= rule.hi;
      p = inside ? rule.prob_inside : rule.prob_outside;
    }
    (*boolean_row)[static_cast<size_t>(b)] = rng.NextBernoulli(p) ? 1 : 0;
  }
}

}  // namespace

TableConfig PaperSection61Config(int64_t num_rows) {
  TableConfig config;
  config.num_rows = num_rows;
  config.num_numeric = 8;
  config.num_boolean = 8;
  return config;
}

storage::Relation GenerateTable(const TableConfig& config, Rng& rng) {
  const ResolvedConfig resolved = Resolve(config);
  storage::Relation relation(
      storage::Schema::Synthetic(config.num_numeric, config.num_boolean));
  relation.Reserve(config.num_rows);
  std::vector<double> numeric_row(static_cast<size_t>(config.num_numeric));
  std::vector<uint8_t> boolean_row(static_cast<size_t>(config.num_boolean));
  for (int64_t row = 0; row < config.num_rows; ++row) {
    GenerateRow(config, resolved, rng, &numeric_row, &boolean_row);
    relation.AppendRow(numeric_row, boolean_row);
  }
  return relation;
}

Status GenerateTableToFile(const TableConfig& config, Rng& rng,
                           const std::string& path) {
  const ResolvedConfig resolved = Resolve(config);
  Result<storage::PagedFileWriter> writer_or = storage::PagedFileWriter::Create(
      path, config.num_numeric, config.num_boolean);
  if (!writer_or.ok()) return writer_or.status();
  storage::PagedFileWriter writer = std::move(writer_or).value();
  std::vector<double> numeric_row(static_cast<size_t>(config.num_numeric));
  std::vector<uint8_t> boolean_row(static_cast<size_t>(config.num_boolean));
  for (int64_t row = 0; row < config.num_rows; ++row) {
    GenerateRow(config, resolved, rng, &numeric_row, &boolean_row);
    OPTRULES_RETURN_IF_ERROR(writer.AppendRow(numeric_row, boolean_row));
  }
  return writer.Close();
}

}  // namespace optrules::datagen
