#include "datagen/correlation.h"

#include "common/logging.h"

namespace optrules::datagen {

void ApplyPlantedRule(const PlantedRule& rule, Rng& rng,
                      storage::Relation* relation) {
  OPTRULES_CHECK(relation != nullptr);
  OPTRULES_CHECK(rule.lo <= rule.hi);
  OPTRULES_CHECK(0.0 <= rule.prob_inside && rule.prob_inside <= 1.0);
  OPTRULES_CHECK(0.0 <= rule.prob_outside && rule.prob_outside <= 1.0);
  const std::vector<double>& values =
      relation->NumericColumn(rule.numeric_attr);
  std::vector<uint8_t>& flags =
      relation->MutableBooleanColumn(rule.boolean_attr);
  OPTRULES_CHECK(flags.size() == values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    const bool inside = rule.lo <= values[i] && values[i] <= rule.hi;
    const double p = inside ? rule.prob_inside : rule.prob_outside;
    flags[i] = rng.NextBernoulli(p) ? 1 : 0;
  }
}

RangeStats MeasureRange(const storage::Relation& relation, int numeric_attr,
                        int boolean_attr, double lo, double hi) {
  const std::vector<double>& values = relation.NumericColumn(numeric_attr);
  const std::vector<uint8_t>& flags = relation.BooleanColumn(boolean_attr);
  RangeStats stats;
  for (size_t i = 0; i < values.size(); ++i) {
    if (lo <= values[i] && values[i] <= hi) {
      ++stats.tuples_in_range;
      if (flags[i] != 0) ++stats.hits_in_range;
    }
  }
  const int64_t n = relation.NumRows();
  stats.support = n > 0 ? static_cast<double>(stats.tuples_in_range) /
                              static_cast<double>(n)
                        : 0.0;
  stats.confidence =
      stats.tuples_in_range > 0
          ? static_cast<double>(stats.hits_in_range) /
                static_cast<double>(stats.tuples_in_range)
          : 0.0;
  return stats;
}

}  // namespace optrules::datagen
