// Decision trees with range splitting (Section 1.5 application).
//
// The paper positions optimized range rules as "a powerful substitute" for
// the binary (guillotine) splits of ID3/CART/SLIQ, and the authors'
// follow-up [10] builds decision trees with range and region splits. This
// module implements that application: a binary classification tree over a
// Relation whose numeric splits may be either
//   - point splits  `A <= v`            (the classic family), or
//   - range splits  `A in [lo, hi]`     (built on bucketized columns),
// chosen to maximize the weighted Gini impurity reduction. Boolean
// attributes split on their value.

#ifndef OPTRULES_TREE_DECISION_TREE_H_
#define OPTRULES_TREE_DECISION_TREE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/relation.h"

namespace optrules::tree {

/// Which numeric split family the trainer may use.
enum class SplitFamily {
  kPointOnly,  ///< A <= v (ID3/CART-style guillotine splits)
  kRange,      ///< A in [lo, hi] (the paper's optimized-range splits)
};

/// Node predicate family (exposed for the trainer; leaves carry kLeaf).
enum class NodeKind : uint8_t { kLeaf, kNumericRange, kBooleanValue };

/// Training parameters.
struct TreeOptions {
  int max_depth = 5;
  int64_t min_leaf_tuples = 50;
  /// Buckets per numeric attribute when searching for splits; the range
  /// search is O(buckets^2) per attribute per node.
  int num_buckets = 48;
  SplitFamily split_family = SplitFamily::kRange;
  /// Minimum Gini reduction to accept a split.
  double min_gain = 1e-4;
};

/// A trained binary classification tree predicting a Boolean attribute.
class DecisionTree {
 public:
  /// Trains a tree for `target_attr` (a Boolean attribute of `relation`)
  /// from all other attributes.
  static Result<DecisionTree> Train(const storage::Relation& relation,
                                    const std::string& target_attr,
                                    const TreeOptions& options);

  /// Predicts the target for one tuple given per-kind attribute values in
  /// the relation's column order (the target Boolean column must be
  /// present in `boolean_values` but is ignored).
  bool Predict(std::span<const double> numeric_values,
               std::span<const uint8_t> boolean_values) const;

  /// Fraction of rows of `relation` predicted correctly.
  double Accuracy(const storage::Relation& relation) const;

  /// Number of nodes (internal + leaves).
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  /// Depth of the deepest leaf (root = depth 0).
  int depth() const;

  /// Indented textual rendering for inspection.
  std::string ToString() const;

 private:
  friend class TreeBuilder;

  /// One node; leaves have child indices -1.
  struct Node {
    NodeKind kind = NodeKind::kLeaf;
    int attribute = -1;   ///< per-kind attribute index
    double lo = 0.0;      ///< range split: lo <= A <= hi goes left
    double hi = 0.0;
    bool prediction = false;  ///< leaves only
    int left = -1;   ///< matching tuples ("in range" / "true")
    int right = -1;  ///< non-matching tuples
    int node_depth = 0;
  };

  int PredictNode(int node, std::span<const double> numeric_values,
                  std::span<const uint8_t> boolean_values) const;

  std::vector<Node> nodes_;  // nodes_[0] is the root
  int target_attribute_ = -1;
  storage::Schema schema_;
};

}  // namespace optrules::tree

#endif  // OPTRULES_TREE_DECISION_TREE_H_
