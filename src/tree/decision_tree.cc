#include "tree/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bucketing/counting.h"
#include "bucketing/sort_bucketizer.h"

namespace optrules::tree {

namespace {

double Gini(int64_t positives, int64_t total) {
  if (total == 0) return 0.0;
  const double p =
      static_cast<double>(positives) / static_cast<double>(total);
  return 2.0 * p * (1.0 - p);
}

/// Weighted impurity of a two-way partition.
double SplitImpurity(int64_t left_pos, int64_t left_n, int64_t right_pos,
                     int64_t right_n) {
  const double n = static_cast<double>(left_n + right_n);
  return (static_cast<double>(left_n) * Gini(left_pos, left_n) +
          static_cast<double>(right_n) * Gini(right_pos, right_n)) /
         n;
}

/// A candidate split under evaluation.
struct Candidate {
  bool valid = false;
  double gain = 0.0;
  NodeKind kind = NodeKind::kLeaf;
  int attribute = -1;
  double lo = 0.0;
  double hi = 0.0;
};

}  // namespace

/// Recursive trainer; friend of DecisionTree.
class TreeBuilder {
 public:
  TreeBuilder(const storage::Relation& relation, int target,
              const TreeOptions& options)
      : relation_(relation), target_(target), options_(options) {}

  int Build(DecisionTree* tree, std::vector<int64_t> rows, int depth) {
    const std::vector<uint8_t>& target_column =
        relation_.BooleanColumn(target_);
    int64_t positives = 0;
    for (const int64_t row : rows) {
      positives += target_column[static_cast<size_t>(row)];
    }

    DecisionTree::Node node;
    node.node_depth = depth;
    node.prediction = 2 * positives >= static_cast<int64_t>(rows.size());

    const bool can_split =
        depth < options_.max_depth &&
        static_cast<int64_t>(rows.size()) >= 2 * options_.min_leaf_tuples &&
        positives != 0 && positives != static_cast<int64_t>(rows.size());
    Candidate best;
    if (can_split) best = FindBestSplit(rows, positives);

    const int index = static_cast<int>(tree->nodes_.size());
    tree->nodes_.push_back(node);
    if (!best.valid || best.gain < options_.min_gain) {
      return index;  // leaf
    }

    // Partition rows by the chosen predicate.
    std::vector<int64_t> left_rows;
    std::vector<int64_t> right_rows;
    for (const int64_t row : rows) {
      if (Matches(best, row)) {
        left_rows.push_back(row);
      } else {
        right_rows.push_back(row);
      }
    }
    if (left_rows.empty() || right_rows.empty()) return index;  // leaf

    tree->nodes_[static_cast<size_t>(index)].kind = best.kind;
    tree->nodes_[static_cast<size_t>(index)].attribute = best.attribute;
    tree->nodes_[static_cast<size_t>(index)].lo = best.lo;
    tree->nodes_[static_cast<size_t>(index)].hi = best.hi;
    rows.clear();
    rows.shrink_to_fit();
    const int left = Build(tree, std::move(left_rows), depth + 1);
    const int right = Build(tree, std::move(right_rows), depth + 1);
    tree->nodes_[static_cast<size_t>(index)].left = left;
    tree->nodes_[static_cast<size_t>(index)].right = right;
    return index;
  }

 private:
  bool Matches(const Candidate& split, int64_t row) const {
    if (split.kind == NodeKind::kNumericRange) {
      const double value = relation_.NumericValue(row, split.attribute);
      return split.lo <= value && value <= split.hi;
    }
    return relation_.BooleanValue(row, split.attribute);
  }

  Candidate FindBestSplit(const std::vector<int64_t>& rows,
                          int64_t positives) {
    Candidate best;
    const double parent = Gini(positives, static_cast<int64_t>(rows.size()));

    for (int attr = 0; attr < relation_.schema().num_numeric(); ++attr) {
      EvaluateNumeric(rows, positives, parent, attr, &best);
    }
    for (int attr = 0; attr < relation_.schema().num_boolean(); ++attr) {
      if (attr == target_) continue;
      EvaluateBoolean(rows, positives, parent, attr, &best);
    }
    return best;
  }

  void EvaluateNumeric(const std::vector<int64_t>& rows, int64_t positives,
                       double parent, int attr, Candidate* best) {
    // Gather the node's values and bucketize them (exact equi-depth on the
    // subset, so every node adapts its candidate cut points).
    std::vector<double> values;
    std::vector<uint8_t> target;
    values.reserve(rows.size());
    target.reserve(rows.size());
    const std::vector<double>& column = relation_.NumericColumn(attr);
    const std::vector<uint8_t>& target_column =
        relation_.BooleanColumn(target_);
    for (const int64_t row : rows) {
      values.push_back(column[static_cast<size_t>(row)]);
      target.push_back(target_column[static_cast<size_t>(row)]);
    }
    const bucketing::BucketBoundaries boundaries =
        bucketing::ExactEquiDepthBoundaries(values, options_.num_buckets);
    bucketing::BucketCounts counts =
        bucketing::CountBuckets(values, target, boundaries);
    bucketing::CompactEmptyBuckets(&counts);
    const int m = counts.num_buckets();
    if (m < 2) return;

    // Prefix sums over buckets.
    std::vector<int64_t> pu(static_cast<size_t>(m) + 1, 0);
    std::vector<int64_t> pv(static_cast<size_t>(m) + 1, 0);
    for (int i = 0; i < m; ++i) {
      pu[static_cast<size_t>(i) + 1] =
          pu[static_cast<size_t>(i)] + counts.u[static_cast<size_t>(i)];
      pv[static_cast<size_t>(i) + 1] =
          pv[static_cast<size_t>(i)] + counts.v[0][static_cast<size_t>(i)];
    }
    const int64_t n = pu[static_cast<size_t>(m)];

    const auto consider = [&](int s, int t) {
      const int64_t in_n = pu[static_cast<size_t>(t) + 1] -
                           pu[static_cast<size_t>(s)];
      const int64_t in_pos = pv[static_cast<size_t>(t) + 1] -
                             pv[static_cast<size_t>(s)];
      const int64_t out_n = n - in_n;
      if (in_n < options_.min_leaf_tuples ||
          out_n < options_.min_leaf_tuples) {
        return;
      }
      const double gain =
          parent - SplitImpurity(in_pos, in_n, positives - in_pos, out_n);
      if (gain > best->gain || !best->valid) {
        best->valid = true;
        best->gain = gain;
        best->kind = NodeKind::kNumericRange;
        best->attribute = attr;
        best->lo = counts.min_value[static_cast<size_t>(s)];
        best->hi = counts.max_value[static_cast<size_t>(t)];
      }
    };

    if (options_.split_family == SplitFamily::kRange) {
      for (int s = 0; s < m; ++s) {
        for (int t = s; t < m; ++t) consider(s, t);
      }
    } else {
      // Point splits `A <= v` are the prefix ranges [0, t].
      for (int t = 0; t + 1 < m; ++t) consider(0, t);
    }
  }

  void EvaluateBoolean(const std::vector<int64_t>& rows, int64_t positives,
                       double parent, int attr, Candidate* best) {
    const std::vector<uint8_t>& column = relation_.BooleanColumn(attr);
    const std::vector<uint8_t>& target_column =
        relation_.BooleanColumn(target_);
    int64_t true_n = 0;
    int64_t true_pos = 0;
    for (const int64_t row : rows) {
      if (column[static_cast<size_t>(row)] != 0) {
        ++true_n;
        true_pos += target_column[static_cast<size_t>(row)];
      }
    }
    const int64_t false_n = static_cast<int64_t>(rows.size()) - true_n;
    if (true_n < options_.min_leaf_tuples ||
        false_n < options_.min_leaf_tuples) {
      return;
    }
    const double gain = parent - SplitImpurity(true_pos, true_n,
                                               positives - true_pos,
                                               false_n);
    if (gain > best->gain || !best->valid) {
      best->valid = true;
      best->gain = gain;
      best->kind = NodeKind::kBooleanValue;
      best->attribute = attr;
    }
  }

  const storage::Relation& relation_;
  int target_;
  TreeOptions options_;
};

Result<DecisionTree> DecisionTree::Train(const storage::Relation& relation,
                                         const std::string& target_attr,
                                         const TreeOptions& options) {
  const Result<int> target = relation.schema().BooleanIndexOf(target_attr);
  if (!target.ok()) return target.status();
  if (relation.NumRows() == 0) {
    return Status::InvalidArgument("cannot train on an empty relation");
  }
  if (options.max_depth < 0 || options.min_leaf_tuples < 1 ||
      options.num_buckets < 2) {
    return Status::InvalidArgument("invalid tree options");
  }
  DecisionTree tree;
  tree.target_attribute_ = target.value();
  tree.schema_ = relation.schema();
  std::vector<int64_t> rows(static_cast<size_t>(relation.NumRows()));
  for (int64_t i = 0; i < relation.NumRows(); ++i) {
    rows[static_cast<size_t>(i)] = i;
  }
  TreeBuilder builder(relation, target.value(), options);
  builder.Build(&tree, std::move(rows), 0);
  return tree;
}

int DecisionTree::PredictNode(int node,
                              std::span<const double> numeric_values,
                              std::span<const uint8_t> boolean_values) const {
  const Node& n = nodes_[static_cast<size_t>(node)];
  if (n.kind == NodeKind::kLeaf) return node;
  bool matches;
  if (n.kind == NodeKind::kNumericRange) {
    const double value = numeric_values[static_cast<size_t>(n.attribute)];
    matches = n.lo <= value && value <= n.hi;
  } else {
    matches = boolean_values[static_cast<size_t>(n.attribute)] != 0;
  }
  return PredictNode(matches ? n.left : n.right, numeric_values,
                     boolean_values);
}

bool DecisionTree::Predict(std::span<const double> numeric_values,
                           std::span<const uint8_t> boolean_values) const {
  OPTRULES_CHECK(!nodes_.empty());
  const int leaf = PredictNode(0, numeric_values, boolean_values);
  return nodes_[static_cast<size_t>(leaf)].prediction;
}

double DecisionTree::Accuracy(const storage::Relation& relation) const {
  OPTRULES_CHECK(relation.schema() == schema_);
  int64_t correct = 0;
  std::vector<double> numeric(
      static_cast<size_t>(schema_.num_numeric()));
  std::vector<uint8_t> boolean(
      static_cast<size_t>(schema_.num_boolean()));
  for (int64_t row = 0; row < relation.NumRows(); ++row) {
    for (int c = 0; c < schema_.num_numeric(); ++c) {
      numeric[static_cast<size_t>(c)] = relation.NumericValue(row, c);
    }
    for (int c = 0; c < schema_.num_boolean(); ++c) {
      boolean[static_cast<size_t>(c)] =
          relation.BooleanValue(row, c) ? 1 : 0;
    }
    if (Predict(numeric, boolean) ==
        relation.BooleanValue(row, target_attribute_)) {
      ++correct;
    }
  }
  return relation.NumRows() > 0
             ? static_cast<double>(correct) /
                   static_cast<double>(relation.NumRows())
             : 0.0;
}

int DecisionTree::depth() const {
  int max_depth = 0;
  for (const Node& node : nodes_) {
    max_depth = std::max(max_depth, node.node_depth);
  }
  return max_depth;
}

std::string DecisionTree::ToString() const {
  std::string out;
  // Iterative depth-first rendering with explicit stack of (node, indent).
  std::vector<std::pair<int, int>> stack = {{0, 0}};
  while (!stack.empty()) {
    const auto [index, indent] = stack.back();
    stack.pop_back();
    const Node& node = nodes_[static_cast<size_t>(index)];
    out.append(static_cast<size_t>(indent) * 2, ' ');
    char line[160];
    if (node.kind == NodeKind::kLeaf) {
      std::snprintf(line, sizeof(line), "predict %s\n",
                    node.prediction ? "yes" : "no");
    } else if (node.kind == NodeKind::kNumericRange) {
      std::snprintf(line, sizeof(line), "if %s in [%.4g, %.4g]:\n",
                    schema_.NumericName(node.attribute).c_str(), node.lo,
                    node.hi);
    } else {
      std::snprintf(line, sizeof(line), "if %s = yes:\n",
                    schema_.BooleanName(node.attribute).c_str());
    }
    out += line;
    if (node.kind != NodeKind::kLeaf) {
      // Push right first so the matching branch renders first.
      stack.push_back({node.right, indent + 1});
      stack.push_back({node.left, indent + 1});
    }
  }
  return out;
}

}  // namespace optrules::tree
